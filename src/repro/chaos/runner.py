"""The chaos soak harness: a real campaign under a failure schedule.

``repro chaos`` (and the CI chaos leg) drive this module.  One soak:

1. **Reference** — the campaign runs clean (chaos inactive), serial,
   with a checkpoint.  Its bytes are the ground truth.
2. **Soak** — the same campaign runs in a forked child with the
   schedule active (epoch = restart attempt), writing to its own
   checkpoint/store/queue under the work directory.  Injected I/O
   failures that surface (exit 3) and ``crash`` actions (exit 137)
   restart the child with ``--resume``, up to ``max_restarts``.
3. **Invariants** — after the soak completes: the survivor checkpoint
   is byte-identical to the reference, every store entry passes its
   integrity hash (no torn entry became visible), and in queue mode
   every committed result parses and belongs to the campaign.

Because the child is serial (``jobs=1``) and every chaos decision is a
pure function of ``(seed, spec, epoch, hit index)``, the whole soak —
which sites fired, where the process died, what the survivor files
contain — replays exactly: :func:`verify_replay` runs it twice and
diffs the fired logs and final bytes.

Restart economics: per-process hit counters mean an ``at=N`` rule fires
again each epoch at the same point, so schedules should let resumed
epochs make progress — probabilistic rules (``p=``) decorrelate across
epochs by construction, and ``at=N`` rules with ``N > 1`` advance the
checkpoint by up to ``N-1`` records per epoch.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos import failpoints as fp
from repro.chaos.schedule import CRASH_EXIT_CODE, ChaosSchedule
from repro.core.checkpoint import StoreUnavailableError
from repro.core.experiment import CampaignConfig, run_campaign
from repro.service.executor import run_campaign_cached
from repro.service.store import RunRecordStore
from repro.topology.dragonfly import DragonflyTopology

#: child exit status when an injected I/O failure surfaced to the top
IO_FAILURE_EXIT_CODE = 3


@dataclass
class SoakReport:
    """Everything one soak did, plus the invariant verdicts."""

    spec: str
    seed: int
    queue: bool
    attempts: int = 0
    crashes: int = 0
    io_failures: int = 0
    completed: bool = False
    #: every chaos fire across all epochs, replayed from the fired logs
    fired: list[dict] = field(default_factory=list)
    #: (invariant name, held, detail)
    invariants: list[tuple[str, bool, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.completed and all(held for _, held, _ in self.invariants)

    def format(self) -> str:
        lines = [
            f"chaos soak: spec={self.spec!r} seed={self.seed} "
            f"dispatch={'queue' if self.queue else 'serial'}",
            f"  attempts={self.attempts} crashes={self.crashes} "
            f"io_failures={self.io_failures} fires={len(self.fired)} "
            f"completed={self.completed}",
        ]
        for name, held, detail in self.invariants:
            mark = "ok  " if held else "FAIL"
            lines.append(f"  [{mark}] {name}: {detail}")
        lines.append(f"soak {'PASSED' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _child_main(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    spec: str,
    seed: int,
    epoch: int,
    log_path: str,
    ckpt_path: str,
    store_dir: str,
    queue_dir: str | None,
    fallback_after: float,
) -> None:
    """One soak epoch, inside the forked child.  Never returns."""
    # determinism requires the serial loop: one process, one hit order
    os.environ["REPRO_JOBS"] = "1"
    schedule = ChaosSchedule.parse(spec, seed=seed, epoch=epoch, log_path=log_path)
    fp.activate(schedule)
    try:
        store = RunRecordStore(store_dir)
        run_campaign_cached(
            top,
            cfg,
            store=store,
            checkpoint_path=ckpt_path,
            resume=epoch > 0,
            jobs=1,
            queue_dir=queue_dir,
            fallback_after=fallback_after,
            poll=0.05,
        )
    except (StoreUnavailableError, OSError):
        os._exit(IO_FAILURE_EXIT_CODE)
    except Exception:
        os._exit(1)
    os._exit(0)


def _load_fired(log_path: Path) -> list[dict]:
    out = []
    try:
        text = log_path.read_text()
    except OSError:
        return out
    for line in text.splitlines():
        try:
            out.append(json.loads(line))
        except ValueError:
            continue  # the child died mid-append; the fire still happened
    return out


def _queue_results_valid(queue_dir: Path) -> tuple[bool, str]:
    """Every committed result parses and names a task of this campaign."""
    task_ids = {p.stem for p in (queue_dir / "tasks").glob("*.json")}
    results = sorted((queue_dir / "results").glob("*.json"))
    for path in results:
        try:
            payload = json.loads(path.read_bytes())
        except (OSError, ValueError):
            return False, f"torn/unreadable result {path.name}"
        if path.stem not in task_ids:
            return False, f"result {path.name} matches no campaign task"
        if not isinstance(payload, dict) or "record" not in payload:
            return False, f"result {path.name} is not a complete payload"
    return True, f"{len(results)} committed results, all complete and owned"


def run_soak(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    *,
    spec: str,
    seed: int,
    workdir: str | os.PathLike,
    queue: bool = False,
    max_restarts: int = 25,
    fallback_after: float = 0.3,
) -> SoakReport:
    """Run one campaign soak under ``spec`` (see module docstring)."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = SoakReport(spec=spec, seed=seed, queue=queue)
    # the schedule is validated (and its rules site-checked) up front so
    # a typo fails the soak before any work happens
    for rule in ChaosSchedule.parse(spec, seed=seed).rules:
        rule.check_registered(fp.SITES)

    # ------------------------------------------------------------------
    # phase 1: clean serial reference (chaos must NOT be active here)
    # ------------------------------------------------------------------
    fp.deactivate()
    ref_ckpt = workdir / "reference.jsonl"
    run_campaign(top, cfg, checkpoint_path=str(ref_ckpt), jobs=1)
    ref_bytes = ref_ckpt.read_bytes()

    # ------------------------------------------------------------------
    # phase 2: the soak — fork, perturb, restart on death
    # ------------------------------------------------------------------
    soak_ckpt = workdir / "soak.jsonl"
    store_dir = workdir / "store"
    queue_dir = workdir / "queue" if queue else None
    mp = multiprocessing.get_context("fork")
    for epoch in range(max_restarts + 1):
        log_path = workdir / f"fired.{epoch}.jsonl"
        proc = mp.Process(
            target=_child_main,
            args=(
                top, cfg, spec, seed, epoch, str(log_path), str(soak_ckpt),
                str(store_dir), None if queue_dir is None else str(queue_dir),
                fallback_after,
            ),
        )
        proc.start()
        proc.join()
        report.attempts += 1
        report.fired.extend(_load_fired(log_path))
        code = proc.exitcode
        if code == 0:
            report.completed = True
            break
        if code == CRASH_EXIT_CODE or (code is not None and code < 0):
            report.crashes += 1  # chaos crash, or a raw signal
        elif code == IO_FAILURE_EXIT_CODE:
            report.io_failures += 1
        else:
            report.invariants.append(
                ("child exit", False, f"unexpected exit code {code} in epoch {epoch}")
            )
            return report
    if not report.completed:
        report.invariants.append(
            ("completion", False, f"campaign still unfinished after {report.attempts} epochs")
        )
        return report

    # ------------------------------------------------------------------
    # phase 3: the standing invariants
    # ------------------------------------------------------------------
    soak_bytes = soak_ckpt.read_bytes()
    report.invariants.append(
        (
            "checkpoint byte-identical to clean serial",
            soak_bytes == ref_bytes,
            f"{len(soak_bytes)} bytes vs {len(ref_bytes)} reference",
        )
    )
    ok_entries, bad_keys = RunRecordStore(store_dir).verify()
    report.invariants.append(
        (
            "no torn store entry became visible",
            not bad_keys,
            f"{ok_entries} entries verified"
            + (f", bad: {bad_keys}" if bad_keys else ""),
        )
    )
    if queue_dir is not None and queue_dir.exists():
        held, detail = _queue_results_valid(queue_dir)
        report.invariants.append(("queue results complete and owned", held, detail))
    return report


def verify_replay(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    *,
    spec: str,
    seed: int,
    workdir: str | os.PathLike,
    queue: bool = False,
    max_restarts: int = 25,
    fallback_after: float = 0.3,
) -> tuple[SoakReport, SoakReport, bool]:
    """Run the soak twice from scratch; True iff they replayed identically.

    Identical means: same fired sequence (site, hit, action, epoch) and
    byte-identical surviving checkpoints — the whole failure run is a
    pure function of ``(seed, spec)``.
    """
    workdir = Path(workdir)
    first = run_soak(
        top, cfg, spec=spec, seed=seed, workdir=workdir / "run1",
        queue=queue, max_restarts=max_restarts, fallback_after=fallback_after,
    )
    second = run_soak(
        top, cfg, spec=spec, seed=seed, workdir=workdir / "run2",
        queue=queue, max_restarts=max_restarts, fallback_after=fallback_after,
    )
    same = (
        first.fired == second.fired
        and first.attempts == second.attempts
        and first.crashes == second.crashes
        and first.io_failures == second.io_failures
        and _soak_bytes(workdir / "run1") == _soak_bytes(workdir / "run2")
    )
    return first, second, same


def _soak_bytes(rundir: Path) -> bytes:
    try:
        return (rundir / "soak.jsonl").read_bytes()
    except OSError:
        return b""
