"""The failpoint registry: named injection sites in the durability paths.

A *failpoint* is a named call site inside a durability-critical code
path — the instant before a cache entry's rename, the append of a
checkpoint line, the O_EXCL open that claims a queue lease.  With no
schedule active, :func:`failpoint` is a single attribute load and a
``return`` — a strict no-op, enforced byte-for-byte by the golden test
in ``tests/test_chaos.py``.  With a :class:`~repro.chaos.schedule.
ChaosSchedule` activated, each hit is counted and the schedule decides
deterministically (from its seed and the hit index) whether to raise
``OSError``, tear the in-flight file, crash the process, or inject
latency — see ``docs/CHAOS.md``.

Activation is process-global on purpose: fork-pool workers and forked
soak children inherit the active schedule, and subprocess workers pick
it up from the environment (:func:`activate_from_env`, called by the
CLI), so one ``REPRO_CHAOS`` spec perturbs every layer of a campaign.

Every site must be declared in :data:`SITES` before it can be wired in;
the registry-completeness meta-test fails when a site ships without a
chaos test exercising it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (schedule imports us)
    from repro.chaos.schedule import ChaosSchedule

#: every registered injection site: name -> where it fires.
#: tests/test_chaos.py::test_every_site_has_a_chaos_test keeps this
#: catalog and the per-site test table in lockstep.
SITES: dict[str, str] = {
    "store.commit.post_tmp": (
        "RunRecordStore.put, after the entry's tmp file is written but "
        "before it is fsynced (torn-write window)"
    ),
    "store.commit.pre_rename": (
        "RunRecordStore.put, after fsync but before os.replace publishes "
        "the entry (crash leaves only invisible scratch)"
    ),
    "store.get.read": (
        "RunRecordStore.get, before the entry file is read (an EIO here "
        "must degrade to a cache miss)"
    ),
    "checkpoint.append": (
        "checkpoint.append_record, before one record line is appended "
        "(torn appends are what repair_tail exists for)"
    ),
    "queue.lease.claim": (
        "WorkQueue claim path, before the O_EXCL open that arbitrates a "
        "lease"
    ),
    "queue.lease.renew": (
        "WorkQueue.renew, before the lease file is re-stamped (a renewal "
        "outage must not kill the run)"
    ),
    "queue.commit.post_tmp": (
        "WorkQueue.commit_result, after the result payload is written to "
        "scratch but before fsync"
    ),
    "queue.commit.link": (
        "WorkQueue.commit_result, before the os.link that publishes the "
        "result (first-commit-wins gate)"
    ),
    "worker.heartbeat": (
        "DistWorker, at the start of each task execution where the "
        "liveness heartbeat is stamped (heartbeat loss is advisory)"
    ),
    "service.job.dispatch": (
        "CampaignService job thread, before the campaign executor is "
        "invoked for a submitted job"
    ),
    "service.journal.append": (
        "JobJournal.record, while the job's journal entry is being "
        "committed (journal loss degrades recovery, never availability)"
    ),
}


class UnknownFailpointError(ValueError):
    """A failpoint fired (or a rule targeted) a site not in :data:`SITES`."""


#: the active schedule, or None (the zero-cost default)
_active: "ChaosSchedule | None" = None


def failpoint(site: str, *, path=None, data: str | None = None) -> None:
    """Declare one injection site hit.

    With no active schedule this returns immediately.  ``path`` names
    the file in flight at this site (the torn-write target and the
    ``filename`` of injected ``OSError``); ``data`` is the payload being
    written, used to build a realistic half-written file.

    May raise ``OSError`` (ENOSPC/EIO), sleep, or terminate the process
    — exactly what the schedule's matching rule says, nothing else.
    """
    if _active is None:
        return
    _active.hit(site, path=path, data=data)


def is_active() -> bool:
    """True when a schedule is currently installed."""
    return _active is not None


def current() -> "ChaosSchedule | None":
    """The installed schedule (for fired-log inspection), or None."""
    return _active


def activate(schedule: "ChaosSchedule") -> None:
    """Install ``schedule`` process-wide (forked children inherit it)."""
    for rule in schedule.rules:
        rule.check_registered(SITES)
    global _active
    _active = schedule


def deactivate() -> None:
    """Remove any installed schedule; failpoints go back to no-ops."""
    global _active
    _active = None


@contextmanager
def active(schedule: "ChaosSchedule") -> Iterator["ChaosSchedule"]:
    """Scoped activation for tests: install, yield, always deactivate."""
    activate(schedule)
    try:
        yield schedule
    finally:
        deactivate()


#: environment variables the CLI uses to thread a schedule into
#: subprocess workers and services (``repro worker``, ``repro serve``)
ENV_SPEC = "REPRO_CHAOS"
ENV_SEED = "REPRO_CHAOS_SEED"
ENV_EPOCH = "REPRO_CHAOS_EPOCH"
ENV_LOG = "REPRO_CHAOS_LOG"


def activate_from_env(environ=None) -> "ChaosSchedule | None":
    """Install the schedule described by ``$REPRO_CHAOS``, if any.

    Called once at CLI startup, so every ``repro`` subprocess (workers,
    the service, soak children) honours the same failure schedule.
    Returns the installed schedule, or None when the variable is unset
    or empty.  Raises :class:`~repro.chaos.schedule.ChaosSpecError`
    (a ``ValueError``) on a malformed spec — the CLI maps it to exit 2.
    """
    from repro.chaos.schedule import ChaosSchedule

    env = os.environ if environ is None else environ
    spec = env.get(ENV_SPEC, "").strip()
    if not spec:
        return None
    schedule = ChaosSchedule.parse(
        spec,
        seed=int(env.get(ENV_SEED, "0") or "0"),
        epoch=int(env.get(ENV_EPOCH, "0") or "0"),
        log_path=env.get(ENV_LOG) or None,
    )
    activate(schedule)
    return schedule
