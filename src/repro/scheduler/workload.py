"""Production workload mix (the model behind Fig. 1).

Theta's production mix, per the paper's Fig. 1 discussion: roughly 40%
of all core-hours come from jobs of 128-512 nodes (the "medium" range
most susceptible to congestion), with the rest spread up to
full-machine jobs.  :class:`JobSizeMix` models job sizes as a discrete
power-law over the machine's allocatable sizes; durations are
log-normal.  :class:`WorkloadModel` turns the mix into synthetic job
logs and instantaneous active-job mixes (for the background-noise and
facility simulations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheduler.jobs import Job, JobLog
from repro.topology.dragonfly import DragonflyTopology

#: traffic archetypes and their sampling weights in production
ARCHETYPE_WEIGHTS: dict[str, float] = {
    "stencil": 0.40,
    "alltoall": 0.15,
    "allreduce": 0.15,
    "bisection": 0.10,
    "io_incast": 0.08,
    "quiet": 0.12,
}


@dataclass(frozen=True)
class JobSizeMix:
    """Discrete power-law job-size distribution.

    ``P(size) ~ size**(-count_exponent)`` over ``sizes``; core-hour share
    is then ``~ size**(1 - count_exponent)`` times the duration mix.
    The default exponent puts ~40% of core-hours in 128-512 node jobs on
    a Theta-sized machine, matching Fig. 1.
    """

    sizes: tuple[int, ...] = (
        128, 192, 256, 320, 384, 448, 512, 640, 768, 896,
        1024, 1280, 1536, 2048, 2560, 3072, 3584, 4096,
    )
    count_exponent: float = 1.1
    duration_log_mean: float = np.log(4.0)  # hours
    duration_log_sigma: float = 0.9

    def probabilities(self, max_nodes: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(sizes, probabilities), truncated to the machine size."""
        sizes = np.array([s for s in self.sizes if max_nodes is None or s <= max_nodes])
        w = sizes.astype(np.float64) ** (-self.count_exponent)
        return sizes, w / w.sum()

    def sample_size(self, rng: np.random.Generator, max_nodes: int | None = None) -> int:
        sizes, p = self.probabilities(max_nodes)
        return int(rng.choice(sizes, p=p))

    def sample_duration(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.duration_log_mean, self.duration_log_sigma))


@dataclass
class WorkloadModel:
    """Synthetic production workload for a system."""

    top: DragonflyTopology
    mix: JobSizeMix = field(default_factory=JobSizeMix)

    def _sample_archetype(self, rng: np.random.Generator) -> str:
        names = list(ARCHETYPE_WEIGHTS)
        w = np.array([ARCHETYPE_WEIGHTS[n] for n in names])
        return str(rng.choice(names, p=w / w.sum()))

    def generate_log(self, n_jobs: int, rng: np.random.Generator) -> JobLog:
        """A synthetic job log (sizes, durations, archetypes) — Fig. 1 input."""
        log = JobLog()
        t = 0.0
        for _ in range(n_jobs):
            size = self.mix.sample_size(rng, self.top.n_nodes)
            log.jobs.append(
                Job(
                    n_nodes=size,
                    duration_hours=self.mix.sample_duration(rng),
                    archetype=self._sample_archetype(rng),
                    start_hours=t,
                )
            )
            t += float(rng.exponential(0.2))
        return log

    def sample_active_jobs(
        self,
        rng: np.random.Generator,
        *,
        target_fill: float = 0.85,
        reserve_nodes: int = 0,
    ) -> list[Job]:
        """An instantaneous mix of concurrently running jobs.

        Jobs are drawn from the size mix until the machine (minus
        ``reserve_nodes`` held back for the experiment's own job) is
        ``target_fill`` full — matching how the paper's production runs
        shared Theta/Cori with whatever else was scheduled.
        """
        if not (0.0 <= target_fill <= 1.0):
            raise ValueError("target_fill must be in [0, 1]")
        budget = int((self.top.n_nodes - reserve_nodes) * target_fill)
        jobs: list[Job] = []
        used = 0
        attempts = 0
        while used < budget and attempts < 1000:
            attempts += 1
            size = self.mix.sample_size(rng, self.top.n_nodes)
            if used + size > budget:
                if budget - used >= self.mix.sizes[0]:
                    size = self.mix.sizes[0]
                else:
                    break
            jobs.append(
                Job(
                    n_nodes=size,
                    duration_hours=self.mix.sample_duration(rng),
                    archetype=self._sample_archetype(rng),
                )
            )
            used += size
        return jobs
