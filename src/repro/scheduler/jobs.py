"""Job records and core-hour accounting for workload studies."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Job:
    """One batch job in a (synthetic) production log.

    Attributes
    ----------
    n_nodes:
        Allocation size.
    duration_hours:
        Wall-clock hours.
    archetype:
        Traffic archetype name (see
        :class:`~repro.scheduler.background.BackgroundModel`).
    start_hours:
        Submission-relative start time, hours.
    nodes:
        Concrete placement, when materialized.
    """

    n_nodes: int
    duration_hours: float
    archetype: str = "stencil"
    start_hours: float = 0.0
    nodes: np.ndarray | None = None

    @property
    def core_hours(self) -> float:
        """Core-hours at Theta's 64 cores per KNL node."""
        return self.n_nodes * 64 * self.duration_hours


@dataclass
class JobLog:
    """A collection of jobs with aggregate views (Fig. 1's input)."""

    jobs: list[Job] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.jobs)

    def sizes(self) -> np.ndarray:
        return np.array([j.n_nodes for j in self.jobs])

    def core_hours(self) -> np.ndarray:
        return np.array([j.core_hours for j in self.jobs])

    def core_hour_fraction_between(self, lo: int, hi: int) -> float:
        """Fraction of total core-hours from jobs with lo <= nodes <= hi."""
        ch = self.core_hours()
        total = ch.sum()
        if total <= 0:
            return 0.0
        sel = (self.sizes() >= lo) & (self.sizes() <= hi)
        return float(ch[sel].sum() / total)

    def corehours_ccdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Complementary CDF of core-hours over job size (Fig. 1).

        Returns ``(sizes, ccdf)``: for each distinct job size ``s``, the
        fraction of total core-hours contributed by jobs of size >= s.
        """
        sizes = self.sizes()
        ch = self.core_hours()
        order = np.argsort(sizes)
        sizes_sorted = sizes[order]
        ch_sorted = ch[order]
        uniq, starts = np.unique(sizes_sorted, return_index=True)
        tail = ch_sorted[::-1].cumsum()[::-1]
        return uniq, tail[starts] / ch.sum()
