"""Job placement, production workload mix, and background traffic.

The paper's production/isolated/controlled distinction is entirely about
*who else* loads the shared links and *where* a job's nodes land:

* :mod:`~repro.scheduler.placement` — compact, dispersed, random, and
  production-fragmented placements, plus span metrics (groups spanned);
* :mod:`~repro.scheduler.workload` — the Theta job-size/core-hour mix
  behind Fig. 1 and the facility studies;
* :mod:`~repro.scheduler.jobs` — job records and core-hour accounting;
* :mod:`~repro.scheduler.background` — synthesizes the ambient link
  utilization field a target job experiences in production, by sampling
  a co-running job mix, assigning each job a traffic archetype, and
  routing it with the system-default mode through the fluid engine.
"""

from repro.scheduler.placement import (
    compact_placement,
    dispersed_placement,
    random_placement,
    production_placement,
    groups_spanned,
    FreeNodePool,
)
from repro.scheduler.workload import WorkloadModel, JobSizeMix
from repro.scheduler.jobs import Job, JobLog
from repro.scheduler.background import BackgroundModel, BackgroundScenario
from repro.scheduler.simulator import BatchScheduler, ScheduleTrace, ScheduledJob

__all__ = [
    "compact_placement",
    "dispersed_placement",
    "random_placement",
    "production_placement",
    "groups_spanned",
    "FreeNodePool",
    "WorkloadModel",
    "JobSizeMix",
    "Job",
    "JobLog",
    "BackgroundModel",
    "BackgroundScenario",
    "BatchScheduler",
    "ScheduleTrace",
    "ScheduledJob",
]
