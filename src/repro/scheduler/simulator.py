"""Discrete-event batch scheduler simulation.

The workload model (:mod:`repro.scheduler.workload`) samples *snapshots*
of active jobs; this module evolves a machine **through time**: jobs
arrive in a Poisson stream, queue FCFS with simple backfill, receive a
production placement when capacity frees up, run for their duration, and
depart.  The resulting trace gives the facility studies time-correlated
machine states (the real LDMS weeks are consecutive minutes of *one*
evolving system, not independent draws) and produces the schedule-level
metrics facilities track: utilization timeline, queue wait times, and
the core-hours log behind Fig. 1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.scheduler.jobs import Job, JobLog
from repro.scheduler.placement import FreeNodePool, production_placement
from repro.scheduler.workload import WorkloadModel
from repro.topology.dragonfly import DragonflyTopology


@dataclass
class ScheduledJob:
    """A job with its life-cycle timestamps (hours)."""

    job: Job
    submit: float
    start: float = -1.0
    end: float = -1.0
    nodes: np.ndarray | None = None

    @property
    def wait(self) -> float:
        """Queue wait in hours (-1 if never started)."""
        return self.start - self.submit if self.start >= 0 else -1.0

    @property
    def ran(self) -> bool:
        return self.start >= 0


@dataclass
class ScheduleTrace:
    """Outcome of one scheduler simulation."""

    top: DragonflyTopology
    jobs: list[ScheduledJob]
    sample_times: np.ndarray  # hours
    utilization: np.ndarray  # fraction of nodes busy per sample
    active_at: list[list[ScheduledJob]]  # running jobs per sample

    def completed(self) -> list[ScheduledJob]:
        return [j for j in self.jobs if j.ran and j.end <= self.sample_times[-1]]

    def mean_wait_hours(self) -> float:
        waits = [j.wait for j in self.jobs if j.ran]
        return float(np.mean(waits)) if waits else 0.0

    def job_log(self) -> JobLog:
        """The completed-jobs log (Fig. 1's input) from this trace."""
        return JobLog(jobs=[s.job for s in self.jobs if s.ran])


class BatchScheduler:
    """FCFS-with-backfill scheduler over a dragonfly's node pool.

    Parameters
    ----------
    top:
        The machine.
    workload:
        Job size/duration/archetype source.
    arrival_rate:
        Mean job arrivals per hour.
    backfill_depth:
        How many queued jobs past the FCFS head may start early if the
        head does not fit (0 = pure FCFS).
    """

    def __init__(
        self,
        top: DragonflyTopology,
        *,
        workload: WorkloadModel | None = None,
        arrival_rate: float = 12.0,
        backfill_depth: int = 8,
    ) -> None:
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")
        if backfill_depth < 0:
            raise ValueError("backfill_depth must be >= 0")
        self.top = top
        self.workload = workload or WorkloadModel(top)
        self.arrival_rate = arrival_rate
        self.backfill_depth = backfill_depth

    def run(
        self,
        duration_hours: float,
        rng: np.random.Generator,
        *,
        sample_interval_hours: float = 1.0 / 60.0,
        warmup_hours: float = 6.0,
    ) -> ScheduleTrace:
        """Simulate ``duration_hours`` (after a warm-up fill period)."""
        if duration_hours <= 0:
            raise ValueError("duration_hours must be > 0")
        horizon = warmup_hours + duration_hours
        pool = FreeNodePool(self.top)

        # pre-draw arrivals
        jobs: list[ScheduledJob] = []
        t = 0.0
        while t < horizon:
            t += float(rng.exponential(1.0 / self.arrival_rate))
            size = self.workload.mix.sample_size(rng, self.top.n_nodes)
            jobs.append(
                ScheduledJob(
                    job=Job(
                        n_nodes=size,
                        duration_hours=self.workload.mix.sample_duration(rng),
                        archetype=self.workload._sample_archetype(rng),
                        start_hours=t,
                    ),
                    submit=t,
                )
            )

        queue: list[ScheduledJob] = []
        running: list[ScheduledJob] = []
        end_heap: list[tuple[float, int]] = []  # (end time, index into jobs)
        arrivals = iter(jobs)
        next_arrival = next(arrivals, None)

        sample_times = warmup_hours + np.arange(
            0.0, duration_hours, sample_interval_hours
        )
        utilization = np.zeros(sample_times.size)
        active_at: list[list[ScheduledJob]] = [[] for _ in sample_times]
        sample_i = 0

        def try_start(now: float) -> None:
            nonlocal queue
            started: list[ScheduledJob] = []
            blocked_head = False
            for qi, sj in enumerate(queue):
                if blocked_head and qi > self.backfill_depth:
                    break
                if sj.job.n_nodes <= pool.n_free:
                    try:
                        sj.nodes = production_placement(
                            self.top, sj.job.n_nodes, rng, pool=pool
                        )
                    except ValueError:
                        blocked_head = blocked_head or qi == 0
                        continue
                    sj.start = now
                    sj.end = now + sj.job.duration_hours
                    running.append(sj)
                    heapq.heappush(end_heap, (sj.end, id(sj)))
                    started.append(sj)
                else:
                    blocked_head = blocked_head or qi == 0
                    if qi == 0 and self.backfill_depth == 0:
                        break
            queue = [sj for sj in queue if sj not in started]

        now = 0.0
        while now < horizon:
            # next event: arrival, completion, or sample boundary
            candidates = []
            if next_arrival is not None:
                candidates.append(next_arrival.submit)
            if end_heap:
                candidates.append(end_heap[0][0])
            if sample_i < sample_times.size:
                candidates.append(float(sample_times[sample_i]))
            if not candidates:
                break
            now = min(candidates)

            # completions first (free capacity before placing)
            while end_heap and end_heap[0][0] <= now:
                _, sid = heapq.heappop(end_heap)
                done = [sj for sj in running if id(sj) == sid]
                for sj in done:
                    running.remove(sj)
                    pool.release(sj.nodes)
            # arrivals
            while next_arrival is not None and next_arrival.submit <= now:
                queue.append(next_arrival)
                next_arrival = next(arrivals, None)
            try_start(now)
            # samples
            while sample_i < sample_times.size and sample_times[sample_i] <= now:
                busy = sum(sj.job.n_nodes for sj in running)
                utilization[sample_i] = busy / self.top.n_nodes
                active_at[sample_i] = list(running)
                sample_i += 1

        return ScheduleTrace(
            top=self.top,
            jobs=[sj for sj in jobs if sj.submit <= horizon],
            sample_times=sample_times,
            utilization=utilization,
            active_at=active_at,
        )
