"""Node placement strategies.

Section II-C of the paper: *compact* placement minimizes rank-3 exposure
(fewer groups, contiguous routers) at the cost of rank-3 bandwidth
availability; *dispersed* placement draws nodes from many groups, gaining
rank-3 bandwidth but inviting interference.  Production placements on a
busy machine are fragmented — mostly contiguous chunks from several
groups.  All strategies operate on a :class:`FreeNodePool` so campaign
code can carve multiple jobs out of one machine state.
"""

from __future__ import annotations

import numpy as np

from repro.topology.dragonfly import DragonflyTopology


class FreeNodePool:
    """Mutable set of free nodes of a system."""

    def __init__(self, top: DragonflyTopology, free: np.ndarray | None = None) -> None:
        self.top = top
        self._free = np.ones(top.n_nodes, dtype=bool)
        if free is not None:
            self._free[:] = False
            self._free[np.asarray(free)] = True

    @property
    def n_free(self) -> int:
        return int(self._free.sum())

    def free_nodes(self) -> np.ndarray:
        return np.flatnonzero(self._free)

    def take(self, nodes: np.ndarray) -> None:
        """Mark ``nodes`` allocated; raises if any is already taken."""
        nodes = np.asarray(nodes)
        if not self._free[nodes].all():
            raise ValueError("allocation overlaps already-taken nodes")
        self._free[nodes] = False

    def release(self, nodes: np.ndarray) -> None:
        """Return ``nodes`` to the pool."""
        self._free[np.asarray(nodes)] = True


def _pool_or_all(top: DragonflyTopology, pool: FreeNodePool | None) -> np.ndarray:
    return pool.free_nodes() if pool is not None else np.arange(top.n_nodes)


def _commit(pool: FreeNodePool | None, nodes: np.ndarray) -> np.ndarray:
    if pool is not None:
        pool.take(nodes)
    return nodes


def compact_placement(
    top: DragonflyTopology,
    n_nodes: int,
    rng: np.random.Generator,
    *,
    pool: FreeNodePool | None = None,
) -> np.ndarray:
    """Contiguous nodes from as few groups as possible.

    Picks a random starting group with enough contiguous free capacity
    and fills node ids in order (node order follows router order, so
    consecutive nodes share routers, chassis, then groups).
    """
    free = _pool_or_all(top, pool)
    if free.size < n_nodes:
        raise ValueError(f"need {n_nodes} nodes, only {free.size} free")
    # order free nodes by (group, node) and choose the rotation whose
    # window is most group-compact, starting from a random group offset
    start_group = rng.integers(0, top.n_groups)
    key = (top.node_group(free) - start_group) % top.n_groups
    order = np.lexsort((free, key))
    nodes = free[order][:n_nodes]
    return _commit(pool, np.sort(nodes))


def dispersed_placement(
    top: DragonflyTopology,
    n_nodes: int,
    rng: np.random.Generator,
    *,
    n_groups_span: int | None = None,
    pool: FreeNodePool | None = None,
) -> np.ndarray:
    """Nodes spread evenly over ``n_groups_span`` groups (default: all)."""
    free = _pool_or_all(top, pool)
    if free.size < n_nodes:
        raise ValueError(f"need {n_nodes} nodes, only {free.size} free")
    span = n_groups_span or top.n_groups
    groups = rng.permutation(top.n_groups)[:span]
    g_of_free = top.node_group(free)
    chosen: list[np.ndarray] = []
    per_group = int(np.ceil(n_nodes / span))
    for g in groups:
        cands = free[g_of_free == g]
        k = min(per_group, cands.size)
        if k:
            chosen.append(rng.choice(cands, size=k, replace=False))
    nodes = np.concatenate(chosen) if chosen else np.zeros(0, dtype=np.int64)
    if nodes.size < n_nodes:
        # top up from anywhere free
        rest = np.setdiff1d(free, nodes)
        extra = rng.choice(rest, size=n_nodes - nodes.size, replace=False)
        nodes = np.concatenate([nodes, extra])
    nodes = np.sort(rng.permutation(nodes)[:n_nodes])
    return _commit(pool, nodes)


def random_placement(
    top: DragonflyTopology,
    n_nodes: int,
    rng: np.random.Generator,
    *,
    pool: FreeNodePool | None = None,
) -> np.ndarray:
    """Uniformly random free nodes."""
    free = _pool_or_all(top, pool)
    if free.size < n_nodes:
        raise ValueError(f"need {n_nodes} nodes, only {free.size} free")
    nodes = np.sort(rng.choice(free, size=n_nodes, replace=False))
    return _commit(pool, nodes)


def production_placement(
    top: DragonflyTopology,
    n_nodes: int,
    rng: np.random.Generator,
    *,
    pool: FreeNodePool | None = None,
) -> np.ndarray:
    """Fragmented production-style placement.

    A busy scheduler hands out contiguous chunks from whichever groups
    have holes.  We sample a chunk-size scale and stitch chunks from
    random groups until the request is met — reproducing the paper's
    observation that medium jobs typically span several groups (Fig. 3's
    x-axis covers 1..12 groups for the same job size).
    """
    free = _pool_or_all(top, pool)
    if free.size < n_nodes:
        raise ValueError(f"need {n_nodes} nodes, only {free.size} free")
    mean_chunk = max(8, int(rng.lognormal(mean=np.log(64), sigma=1.0)))
    g_of_free = top.node_group(free)
    group_order = rng.permutation(top.n_groups)
    taken: list[np.ndarray] = []
    need = n_nodes
    for g in group_order:
        if need <= 0:
            break
        cands = free[g_of_free == g]
        if cands.size == 0:
            continue
        chunk = int(min(need, cands.size, max(1, rng.poisson(mean_chunk))))
        start = rng.integers(0, cands.size - chunk + 1)
        taken.append(cands[start : start + chunk])
        need -= chunk
    nodes = np.sort(np.concatenate(taken))
    if nodes.size < n_nodes:
        rest = np.setdiff1d(free, nodes)
        nodes = np.sort(
            np.concatenate([nodes, rng.choice(rest, size=n_nodes - nodes.size, replace=False)])
        )
    return _commit(pool, nodes[:n_nodes])


def groups_spanned(top: DragonflyTopology, nodes: np.ndarray) -> int:
    """Number of dragonfly groups a node set touches (Fig. 3's x-axis)."""
    return int(np.unique(top.node_group(np.asarray(nodes))).size)


def make_placement(
    kind: str,
    top: DragonflyTopology,
    n_nodes: int,
    rng: np.random.Generator,
    *,
    pool: FreeNodePool | None = None,
) -> np.ndarray:
    """Dispatch by placement name: compact|dispersed|random|production."""
    table = {
        "compact": compact_placement,
        "dispersed": dispersed_placement,
        "random": random_placement,
        "production": production_placement,
    }
    if kind not in table:
        raise KeyError(f"unknown placement {kind!r}; have {sorted(table)}")
    return table[kind](top, n_nodes, rng, pool=pool)
