"""Production background-traffic synthesis.

A production run of the paper's target applications shared the machine
with whatever else was scheduled; all of that traffic was routed with the
system default (AD0 before the facilities' change, AD3 after).  This
module converts a sampled active-job mix into a per-link **utilization
field** by

1. placing each job (production-fragmented placement),
2. emitting its archetype's byte-rate flows (stencil, alltoall,
   allreduce, bisection streams, I/O incast, or quiet),
3. routing everything with the default
   :class:`~repro.mpi.env.RoutingEnv` through the fluid engine in
   fixed-duration (rate) mode.

Campaigns draw scenarios from a pre-built pool (scenario construction is
the expensive part) and jitter the overall intensity per run, which is
how the paper's "wide range of production congestion scenarios over four
months" enters the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpi.collectives import alltoall_flows, allreduce_flows
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.scheduler.jobs import Job
from repro.scheduler.placement import FreeNodePool, production_placement
from repro.scheduler.workload import WorkloadModel
from repro.topology.dragonfly import DragonflyTopology
from repro.util import GB
from repro.apps.base import grid_dims, random_pair_flows, stencil_flows

#: per-node aggregate byte rates (bytes/s) by archetype, at intensity 1.0.
#: These are *busy-phase* rates: the intensity jitter models duty cycle,
#: and the levels are calibrated so production stalls-to-flits ratios and
#: latency tails land in the paper's observed ranges (Figs. 11, 14).
ARCHETYPE_RATES: dict[str, float] = {
    "stencil": 2.8 * GB,
    "alltoall": 3.6 * GB,
    "allreduce": 0.5 * GB,
    "bisection": 4.5 * GB,
    "io_incast": 1.5 * GB,
    "quiet": 0.1 * GB,
}


@dataclass
class BackgroundScenario:
    """One ambient-congestion snapshot.

    ``util`` is the per-link utilization field at intensity 1.0;
    :meth:`at_intensity` rescales it for per-run jitter.
    """

    util: np.ndarray
    n_jobs: int
    fill: float
    default_env: RoutingEnv

    def at_intensity(self, intensity: float) -> np.ndarray:
        """Utilization field scaled by ``intensity`` (clipped to 0.9)."""
        return np.clip(self.util * intensity, 0.0, 0.9)


def _job_flows(
    job: Job,
    nodes: np.ndarray,
    rng: np.random.Generator,
) -> tuple[FlowSet, FlowSet]:
    """(p2p-class flows, a2a-class flows) at 1-second rate volumes."""
    rate = ARCHETYPE_RATES[job.archetype]
    P = nodes.size
    empty = FlowSet.empty()
    if P < 2 or rate <= 0:
        return empty, empty
    if job.archetype == "stencil":
        # 64 ranks per node fan a node's halo out to many neighbor nodes;
        # model the node-level adjacency as ~12 partners (3D grid plus
        # the diagonal/secondary surfaces), which spreads the local load
        # the way real multi-rank-per-node stencils do
        dims = grid_dims(P, 3)
        n_dirs = 2 * sum(1 for d in dims if d > 1)
        near = stencil_flows(nodes, dims, 0.5 * rate / max(n_dirs, 1))
        far = random_pair_flows(nodes, min(6, P - 1), 0.5 * rate / min(6, max(P - 1, 1)), rng)
        return FlowSet.concat([near, far]), empty
    if job.archetype == "alltoall":
        fl, _ = alltoall_flows(nodes, rate / (P - 1), max_partners=8, rng=rng)
        return empty, fl
    if job.archetype == "allreduce":
        fl, _ = allreduce_flows(nodes, 8.0)
        # many calls per second; scale the 8-byte rounds up to the rate
        calls = rate * P / max(fl.nbytes.sum(), 1.0)
        return fl.scaled(calls), empty
    if job.archetype == "bisection":
        return random_pair_flows(nodes, min(8, P - 1), rate / min(8, P - 1), rng), empty
    if job.archetype == "io_incast":
        # everyone streams to a handful of I/O-forwarding endpoints; the
        # forwarder's ingest (``rate``) is the bottleneck, so each source
        # contributes its fair share of one target's ingest — incast
        # pressure without physically impossible ejection demand
        n_io = max(1, P // 64)
        targets = nodes[rng.choice(P, size=n_io, replace=False)]
        src = np.repeat(nodes, 1)
        dst = targets[rng.integers(0, n_io, size=P)]
        keep = src != dst
        per_src = 2.0 * rate * n_io / max(P, 1)
        return (
            FlowSet(src[keep], dst[keep], np.full(int(keep.sum()), per_src), np.zeros(int(keep.sum()), dtype=np.int64)),
            empty,
        )
    if job.archetype == "quiet":
        return random_pair_flows(nodes, 1, rate, rng), empty
    raise KeyError(f"unknown archetype {job.archetype!r}")


@dataclass
class BackgroundModel:
    """Builds and pools background scenarios for a system."""

    top: DragonflyTopology
    workload: WorkloadModel | None = None
    default_env: RoutingEnv = field(default_factory=RoutingEnv)
    target_fill: float = 0.85
    #: log-normal intensity jitter applied per run.  A run averages over
    #: many transient congestion episodes, so the *effective* per-run
    #: intensity is tighter than the instantaneous load swing.
    intensity_log_mean: float = np.log(0.62)
    intensity_log_sigma: float = 0.34

    def __post_init__(self) -> None:
        if self.workload is None:
            self.workload = WorkloadModel(self.top)

    def build_scenario(
        self,
        rng: np.random.Generator,
        *,
        reserve_nodes: int = 0,
    ) -> BackgroundScenario:
        """Sample a job mix, place it, and solve for the utilization field."""
        jobs = self.workload.sample_active_jobs(
            rng, target_fill=self.target_fill, reserve_nodes=reserve_nodes
        )
        pool = FreeNodePool(self.top)
        p2p_parts: list[FlowSet] = []
        a2a_parts: list[FlowSet] = []
        placed = 0
        for job in jobs:
            if pool.n_free < job.n_nodes + reserve_nodes:
                continue
            nodes = production_placement(self.top, job.n_nodes, rng, pool=pool)
            job.nodes = nodes
            p2p, a2a = _job_flows(job, nodes, rng)
            if p2p.n:
                p2p_parts.append(p2p.with_class(0))
            if a2a.n:
                a2a_parts.append(a2a.with_class(1))
            placed += job.n_nodes
        flows = FlowSet.concat(p2p_parts + a2a_parts)
        params = FluidParams(k_min=2, k_nonmin=2, n_iter=4)
        res = solve_fluid(
            self.top,
            flows,
            [self.default_env.p2p_mode, self.default_env.a2a_mode],
            rng=rng,
            params=params,
            fixed_duration=1.0,
        )
        return BackgroundScenario(
            util=np.clip(res.link_raw_util, 0.0, 0.95),
            n_jobs=len([j for j in jobs if j.nodes is not None]),
            fill=placed / self.top.n_nodes,
            default_env=self.default_env,
        )

    def build_pool(
        self,
        n_scenarios: int,
        rng: np.random.Generator,
        *,
        reserve_nodes: int = 0,
    ) -> list[BackgroundScenario]:
        """Pre-build a pool of scenarios for campaign sampling."""
        return [
            self.build_scenario(rng, reserve_nodes=reserve_nodes)
            for _ in range(n_scenarios)
        ]

    def sample_intensity(self, rng: np.random.Generator) -> float:
        """Per-run intensity jitter."""
        return float(
            np.clip(rng.lognormal(self.intensity_log_mean, self.intensity_log_sigma), 0.05, 1.3)
        )
