"""Cray XC-40 Aries dragonfly topology model.

The paper's two systems (ALCF Theta and NERSC Cori) are Cray XC-40 machines
with a three-level dragonfly: all-to-all rank-1 (copper) links inside each
16-router chassis row, rank-2 (copper, 3-link bundles) columns between the
six chassis of a two-cabinet group, and rank-3 (optical) cables between
groups.  Four nodes attach to each Aries router through 8 processor tiles;
the other 40 router tiles carry rank-1/2/3 traffic.

This subpackage provides:

* :class:`~repro.topology.dragonfly.DragonflyParams` /
  :class:`~repro.topology.dragonfly.DragonflyTopology` — the parametric
  structure with flat directed-link tables used by both network engines,
* :mod:`~repro.topology.systems` — ``theta()`` and ``cori()`` presets plus
  scaled-down variants for tests,
* :mod:`~repro.topology.paths` — vectorized minimal and Valiant
  (non-minimal) path construction,
* :mod:`~repro.topology.tiles` — the router tile inventory used when
  normalizing counters per tile.
"""

from repro.topology.dragonfly import (
    DragonflyParams,
    DragonflyTopology,
    LinkClass,
)
from repro.topology.systems import theta, cori, mini, toy, slingshot
from repro.topology.paths import PathBundle, minimal_paths, valiant_paths
from repro.topology.tiles import TileInventory
from repro.topology.queries import (
    minimal_router_hops,
    minimal_path_diversity,
    placement_geometry,
    bisection_cut,
)

__all__ = [
    "DragonflyParams",
    "DragonflyTopology",
    "LinkClass",
    "theta",
    "cori",
    "mini",
    "toy",
    "slingshot",
    "PathBundle",
    "minimal_paths",
    "valiant_paths",
    "TileInventory",
    "minimal_router_hops",
    "minimal_path_diversity",
    "placement_geometry",
    "bisection_cut",
]
