"""Topology analytics: distances, diversity, and placement geometry.

Helpers for reasoning about a dragonfly the way the paper's Sections
II-C/II-F do — how far apart a job's endpoints are, how many routing
choices connect them, and how a placement spreads over the machine.
All functions are vectorized over node arrays.
"""

from __future__ import annotations

import numpy as np

from repro.topology.dragonfly import DragonflyTopology


def minimal_router_hops(top: DragonflyTopology, src_node, dst_node) -> np.ndarray:
    """Router-to-router hops of the minimal path between node pairs.

    0 for same-router pairs; 1-2 within a group (rank-1 and/or rank-2);
    up to 5 across groups (<=2 local + 1 global + <=2 local).  This is
    the closed form the sampled paths of :mod:`repro.topology.paths`
    realize, computed without building them.
    """
    src_r = top.node_router(np.asarray(src_node))
    dst_r = top.node_router(np.asarray(dst_node))
    same_router = src_r == dst_r
    g_s, g_d = top.router_group(src_r), top.router_group(dst_r)
    c_s, c_d = top.router_chassis(src_r), top.router_chassis(dst_r)
    s_s, s_d = top.router_slot(src_r), top.router_slot(dst_r)

    # intra-group local distance between two routers
    local = np.where(
        same_router, 0, 1 + ((c_s != c_d) & (s_s != s_d)).astype(int)
    )

    # inter-group: src -> gateway, cable (1 hop), gateway -> dst.
    # Gateways vary per cable; we report the *typical* distance (both
    # local legs at their maximum length), matching the builders'
    # averages.  A single-chassis (Slingshot-style) group's local legs
    # are at most one hop.
    inter = np.asarray(g_s != g_d)
    leg = 1 if top.params.chassis_per_group == 1 else 2
    out = np.where(inter, leg + 1 + leg, local)
    # refine inter-group pairs whose endpoints are themselves gateways
    # only statistically; the sampled-path mean is what campaigns use.
    return out.astype(np.int64)


def minimal_path_diversity(top: DragonflyTopology, src_node, dst_node) -> np.ndarray:
    """Number of distinct minimal route choices between node pairs.

    Within a group: 1 for aligned pairs, 2 for two-hop pairs (rank-1
    first or rank-2 first).  Across groups: one choice per cable of the
    direct bundle times the local-leg orders.
    """
    src_node = np.asarray(src_node)
    dst_node = np.asarray(dst_node)
    src_r = top.node_router(src_node)
    dst_r = top.node_router(dst_node)
    g_s, g_d = top.router_group(src_r), top.router_group(dst_r)
    c_s, c_d = top.router_chassis(src_r), top.router_chassis(dst_r)
    s_s, s_d = top.router_slot(src_r), top.router_slot(dst_r)

    intra_two_hop = (g_s == g_d) & (c_s != c_d) & (s_s != s_d)
    intra = np.where(src_r == dst_r, 1, np.where(intra_two_hop, 2, 1))
    K = top.params.cables_per_group_pair
    return np.where(g_s != g_d, K * 4, intra).astype(np.int64)


def placement_geometry(top: DragonflyTopology, nodes: np.ndarray) -> dict[str, float]:
    """Geometry summary of a placement (the Fig.-3 x-axis and more).

    Returns groups/chassis/routers touched, the fraction of random
    intra-job pairs that cross groups (rank-3 exposure), and the mean
    minimal hop distance over sampled pairs.
    """
    nodes = np.asarray(nodes)
    routers = np.unique(top.node_router(nodes))
    groups = np.unique(top.router_group(routers))
    chassis = np.unique(
        top.router_group(routers) * top.params.chassis_per_group
        + top.router_chassis(routers)
    )

    rng = np.random.default_rng(0)
    n = min(2000, nodes.size * (nodes.size - 1))
    i = rng.integers(0, nodes.size, n)
    j = rng.integers(0, nodes.size, n)
    keep = i != j
    src, dst = nodes[i[keep]], nodes[j[keep]]
    cross = top.node_group(src) != top.node_group(dst)
    hops = minimal_router_hops(top, src, dst)
    return {
        "groups": int(groups.size),
        "chassis": int(chassis.size),
        "routers": int(routers.size),
        "cross_group_fraction": float(np.mean(cross)) if cross.size else 0.0,
        "mean_min_hops": float(hops.mean()) if hops.size else 0.0,
    }


def bisection_cut(top: DragonflyTopology, group_set: np.ndarray) -> float:
    """Per-direction optical bandwidth crossing a group bipartition.

    ``group_set`` lists the groups on one side; the cut is the aggregate
    cable bandwidth to the remaining groups — the denominator of the
    bisection-boundness arguments in Sections II-E/IV-C.
    """
    group_set = np.unique(np.asarray(group_set))
    other = np.setdiff1d(np.arange(top.n_groups), group_set)
    n_pairs = group_set.size * other.size
    per_cable = top.params.lanes_per_cable * top.params.rank3_bw_bidir / 2.0
    return float(n_pairs * top.params.cables_per_group_pair * per_cable)
