"""Vectorized minimal and Valiant (non-minimal) path construction.

A *path* is the ordered list of directed link ids a packet traverses from
source NIC to destination NIC.  For the fluid congestion engine we build,
per flow, a small sampled set of candidate **sub-paths** of each kind:

* **minimal** — up to ``k`` sub-paths that differ only in which rank-3
  cable of the direct group-pair bundle they use (and in the rank-1/rank-2
  order of the local legs).  Aries minimal adaptive routing spreads packets
  over exactly this set.
* **non-minimal (Valiant)** — up to ``k`` sub-paths through distinct
  randomly chosen intermediate groups, each taking *two* global hops.
  Within a group, the non-minimal variant detours via a random
  intermediate router.

Paths are stored in a fixed-width ``(n_subpaths, MAX_HOPS)`` int array
padded with ``-1``; unused columns are simply masked during load
accumulation, which keeps every operation a flat NumPy gather/scatter.

Column layout::

    0     injection (NIC -> router)
    1-2   source-group local leg          (rank-1 / rank-2)
    3     first global hop                (rank-3)
    4-5   intermediate- or dest-group leg (rank-1 / rank-2)
    6     second global hop               (rank-3, Valiant only)
    7-8   dest-group local leg            (Valiant only)
    9     ejection (router -> NIC)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.dragonfly import DragonflyTopology

#: fixed path width (see module docstring for the column layout)
MAX_HOPS = 10

_COL_INJ = 0
_COL_LOCAL_A = 1
_COL_GLOBAL_1 = 3
_COL_LOCAL_B = 4
_COL_GLOBAL_2 = 6
_COL_LOCAL_C = 7
_COL_EJE = 9


@dataclass
class PathBundle:
    """A set of candidate sub-paths, each owned by one flow.

    Attributes
    ----------
    links:
        ``(n_subpaths, MAX_HOPS)`` int64 array of directed link ids,
        ``-1``-padded.
    flow:
        ``(n_subpaths,)`` index of the owning flow.
    kind:
        ``"minimal"`` or ``"nonminimal"``.
    """

    links: np.ndarray
    flow: np.ndarray
    kind: str

    @property
    def n_subpaths(self) -> int:
        return self.links.shape[0]

    @property
    def hops(self) -> np.ndarray:
        """Number of valid links per sub-path (including NIC hops)."""
        return (self.links >= 0).sum(axis=1)

    @property
    def router_hops(self) -> np.ndarray:
        """Router-to-router hops only (excluding injection/ejection)."""
        return (self.links[:, 1:_COL_EJE] >= 0).sum(axis=1)

    def subpaths_per_flow(self, n_flows: int) -> np.ndarray:
        """How many sub-paths each flow owns."""
        return np.bincount(self.flow, minlength=n_flows)


def _local_route(
    top: DragonflyTopology,
    src_r: np.ndarray,
    dst_r: np.ndarray,
    rank1_first: np.ndarray,
    out: np.ndarray,
    col0: int,
) -> None:
    """Fill the (up to 2) intra-group links from ``src_r`` to ``dst_r``.

    Both router arrays must be in the same group element-wise.  Writes the
    link ids into ``out[:, col0]`` and ``out[:, col0 + 1]``; leaves ``-1``
    where no hop is needed.  ``rank1_first`` selects the dimension order
    for the two-hop case (both orders are minimal on Aries).
    """
    g = top.router_group(src_r)
    c1 = top.router_chassis(src_r)
    s1 = top.router_slot(src_r)
    c2 = top.router_chassis(dst_r)
    s2 = top.router_slot(dst_r)

    same = src_r == dst_r
    same_chassis = (~same) & (c1 == c2)
    same_slot = (~same) & (s1 == s2)
    two_hop = (~same) & (c1 != c2) & (s1 != s2)

    # single-hop cases
    idx = np.flatnonzero(same_chassis)
    if idx.size:
        out[idx, col0] = top.rank1_link(g[idx], c1[idx], s1[idx], s2[idx])
    idx = np.flatnonzero(same_slot)
    if idx.size:
        out[idx, col0] = top.rank2_link(g[idx], s1[idx], c1[idx], c2[idx])

    # two-hop cases, rank-1 first: row move in src chassis, then column
    idx = np.flatnonzero(two_hop & rank1_first)
    if idx.size:
        out[idx, col0] = top.rank1_link(g[idx], c1[idx], s1[idx], s2[idx])
        out[idx, col0 + 1] = top.rank2_link(g[idx], s2[idx], c1[idx], c2[idx])

    # two-hop cases, rank-2 first: column move, then row in dst chassis
    idx = np.flatnonzero(two_hop & ~rank1_first)
    if idx.size:
        out[idx, col0] = top.rank2_link(g[idx], s1[idx], c1[idx], c2[idx])
        out[idx, col0 + 1] = top.rank1_link(g[idx], c2[idx], s1[idx], s2[idx])


def _sample_distinct(rng: np.random.Generator, n: int, k: int, modulus: int) -> np.ndarray:
    """Sample ``k`` distinct values per row from ``range(modulus)``.

    Uses a random base + unit stride, which is distinct as long as
    ``k <= modulus`` and is dramatically cheaper than per-row permutation.
    """
    if k > modulus:
        raise ValueError(f"cannot sample {k} distinct values from {modulus}")
    base = rng.integers(0, modulus, size=n)
    return (base[:, None] + np.arange(k)[None, :]) % modulus


def minimal_paths(
    top: DragonflyTopology,
    src_node: np.ndarray,
    dst_node: np.ndarray,
    *,
    k: int = 2,
    rng: np.random.Generator,
) -> PathBundle:
    """Build ``k`` minimal candidate sub-paths per flow.

    Inter-group flows get ``k`` sub-paths over distinct rank-3 cables of the
    direct group-pair bundle (capped by the bundle size); intra-group flows
    get ``k`` sub-paths that differ in local-leg dimension order.
    """
    src_node = np.asarray(src_node, dtype=np.int64)
    dst_node = np.asarray(dst_node, dtype=np.int64)
    if src_node.shape != dst_node.shape:
        raise ValueError("src_node and dst_node must have the same shape")
    if np.any(src_node == dst_node):
        raise ValueError("self-flows are not allowed; filter them upstream")
    n = src_node.size
    K = top.params.cables_per_group_pair
    k_eff = min(k, K)

    flow = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    src = np.repeat(src_node, k_eff)
    dst = np.repeat(dst_node, k_eff)
    src_r = top.node_router(src)
    dst_r = top.node_router(dst)
    g_src = top.router_group(src_r)
    g_dst = top.router_group(dst_r)

    m = flow.size
    links = np.full((m, MAX_HOPS), -1, dtype=np.int64)
    links[:, _COL_INJ] = top.injection_link(src)
    links[:, _COL_EJE] = top.ejection_link(dst)
    rank1_first = rng.integers(0, 2, size=m).astype(bool)

    intra = g_src == g_dst
    idx = np.flatnonzero(intra)
    if idx.size:
        sub = links[idx]
        _local_route(top, src_r[idx], dst_r[idx], rank1_first[idx], sub, _COL_LOCAL_A)
        links[idx] = sub

    idx = np.flatnonzero(~intra)
    if idx.size:
        cables = _sample_distinct(rng, n, k_eff, K).reshape(-1)[idx]
        ga, gb = g_src[idx], g_dst[idx]
        gw_a = top.gateway_router(ga, gb, cables)
        gw_b = top.gateway_router(gb, ga, cables)
        sub = links[idx]
        _local_route(top, src_r[idx], gw_a, rank1_first[idx], sub, _COL_LOCAL_A)
        sub[:, _COL_GLOBAL_1] = top.rank3_link(ga, gb, cables)
        _local_route(top, gw_b, dst_r[idx], ~rank1_first[idx], sub, _COL_LOCAL_B)
        links[idx] = sub

    return PathBundle(links=links, flow=flow, kind="minimal")


def valiant_paths(
    top: DragonflyTopology,
    src_node: np.ndarray,
    dst_node: np.ndarray,
    *,
    k: int = 2,
    rng: np.random.Generator,
) -> PathBundle:
    """Build ``k`` non-minimal (Valiant) candidate sub-paths per flow.

    Inter-group flows detour through ``k`` distinct intermediate groups
    (two global hops each); intra-group flows detour through a random
    intermediate router of the same group.
    """
    src_node = np.asarray(src_node, dtype=np.int64)
    dst_node = np.asarray(dst_node, dtype=np.int64)
    if src_node.shape != dst_node.shape:
        raise ValueError("src_node and dst_node must have the same shape")
    if np.any(src_node == dst_node):
        raise ValueError("self-flows are not allowed; filter them upstream")
    n = src_node.size
    G = top.n_groups
    K = top.params.cables_per_group_pair
    k_eff = min(k, max(G - 2, 1))

    flow = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    src = np.repeat(src_node, k_eff)
    dst = np.repeat(dst_node, k_eff)
    src_r = top.node_router(src)
    dst_r = top.node_router(dst)
    g_src = top.router_group(src_r)
    g_dst = top.router_group(dst_r)

    m = flow.size
    links = np.full((m, MAX_HOPS), -1, dtype=np.int64)
    links[:, _COL_INJ] = top.injection_link(src)
    links[:, _COL_EJE] = top.ejection_link(dst)
    rank1_first = rng.integers(0, 2, size=m).astype(bool)

    intra = g_src == g_dst
    idx = np.flatnonzero(intra)
    if idx.size:
        # detour via a random distinct router of the same group
        Rg = top.routers_per_group
        via_local = rng.integers(0, Rg, size=idx.size)
        via = g_src[idx] * Rg + via_local
        clash = (via == src_r[idx]) | (via == dst_r[idx])
        via = np.where(clash, g_src[idx] * Rg + (via_local + 1) % Rg, via)
        # a second collision is possible when Rg is tiny; nudge once more
        clash = (via == src_r[idx]) | (via == dst_r[idx])
        via = np.where(clash, g_src[idx] * Rg + (via_local + 2) % Rg, via)
        sub = links[idx]
        _local_route(top, src_r[idx], via, rank1_first[idx], sub, _COL_LOCAL_A)
        _local_route(top, via, dst_r[idx], ~rank1_first[idx], sub, _COL_LOCAL_B)
        links[idx] = sub

    idx = np.flatnonzero(~intra)
    if idx.size and G == 2:
        # A 2-group dragonfly has no intermediate group; the only
        # non-minimal diversity is over cables, with a forced detour
        # through a random gateway.  Emit minimal-shaped paths over
        # random cables so the bias machinery still has two path sets.
        cables = rng.integers(0, K, size=idx.size)
        ga, gb = g_src[idx], g_dst[idx]
        gw_a = top.gateway_router(ga, gb, cables)
        gw_b = top.gateway_router(gb, ga, cables)
        sub = links[idx]
        _local_route(top, src_r[idx], gw_a, rank1_first[idx], sub, _COL_LOCAL_A)
        sub[:, _COL_GLOBAL_1] = top.rank3_link(ga, gb, cables)
        _local_route(top, gw_b, dst_r[idx], ~rank1_first[idx], sub, _COL_LOCAL_B)
        links[idx] = sub
    elif idx.size:
        # distinct intermediate groups, skipping src and dst groups
        raw = _sample_distinct(rng, n, k_eff, max(G - 2, 1)).reshape(-1)[idx]
        lo = np.minimum(g_src[idx], g_dst[idx])
        hi = np.maximum(g_src[idx], g_dst[idx])
        g_int = raw + (raw >= lo) + (raw + (raw >= lo) >= hi)
        cab1 = rng.integers(0, K, size=idx.size)
        cab2 = rng.integers(0, K, size=idx.size)
        ga, gb = g_src[idx], g_dst[idx]
        gw1_a = top.gateway_router(ga, g_int, cab1)
        gw1_b = top.gateway_router(g_int, ga, cab1)
        gw2_a = top.gateway_router(g_int, gb, cab2)
        gw2_b = top.gateway_router(gb, g_int, cab2)
        sub = links[idx]
        _local_route(top, src_r[idx], gw1_a, rank1_first[idx], sub, _COL_LOCAL_A)
        sub[:, _COL_GLOBAL_1] = top.rank3_link(ga, g_int, cab1)
        _local_route(top, gw1_b, gw2_a, ~rank1_first[idx], sub, _COL_LOCAL_B)
        sub[:, _COL_GLOBAL_2] = top.rank3_link(g_int, gb, cab2)
        _local_route(top, gw2_b, dst_r[idx], rank1_first[idx], sub, _COL_LOCAL_C)
        links[idx] = sub

    return PathBundle(links=links, flow=flow, kind="nonminimal")
