"""Vectorized minimal and Valiant (non-minimal) path construction.

A *path* is the ordered list of directed link ids a packet traverses from
source NIC to destination NIC.  For the fluid congestion engine we build,
per flow, a small sampled set of candidate **sub-paths** of each kind:

* **minimal** — up to ``k`` sub-paths that differ only in which rank-3
  cable of the direct group-pair bundle they use (and in the rank-1/rank-2
  order of the local legs).  Aries minimal adaptive routing spreads packets
  over exactly this set.
* **non-minimal (Valiant)** — up to ``k`` sub-paths through distinct
  randomly chosen intermediate groups, each taking *two* global hops.
  Within a group, the non-minimal variant detours via a random
  intermediate router.

Paths are stored in a fixed-width ``(n_subpaths, MAX_HOPS)`` int array
padded with ``-1``; unused columns are simply masked during load
accumulation, which keeps every operation a flat NumPy gather/scatter.

Column layout::

    0     injection (NIC -> router)
    1-2   source-group local leg          (rank-1 / rank-2)
    3     first global hop                (rank-3)
    4-5   intermediate- or dest-group leg (rank-1 / rank-2)
    6     second global hop               (rank-3, Valiant only)
    7-8   dest-group local leg            (Valiant only)
    9     ejection (router -> NIC)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.errors import NetworkPartitionedError
from repro.topology.dragonfly import DragonflyTopology

#: fixed path width (see module docstring for the column layout)
MAX_HOPS = 10

_COL_INJ = 0
_COL_LOCAL_A = 1
_COL_GLOBAL_1 = 3
_COL_LOCAL_B = 4
_COL_GLOBAL_2 = 6
_COL_LOCAL_C = 7
_COL_EJE = 9


@dataclass
class PathBundle:
    """A set of candidate sub-paths, each owned by one flow.

    Attributes
    ----------
    links:
        ``(n_subpaths, MAX_HOPS)`` int64 array of directed link ids,
        ``-1``-padded.
    flow:
        ``(n_subpaths,)`` index of the owning flow.
    kind:
        ``"minimal"`` or ``"nonminimal"``.
    """

    links: np.ndarray
    flow: np.ndarray
    kind: str

    @property
    def n_subpaths(self) -> int:
        return self.links.shape[0]

    @property
    def hops(self) -> np.ndarray:
        """Number of valid links per sub-path (including NIC hops)."""
        return (self.links >= 0).sum(axis=1)

    @property
    def router_hops(self) -> np.ndarray:
        """Router-to-router hops only (excluding injection/ejection)."""
        return (self.links[:, 1:_COL_EJE] >= 0).sum(axis=1)

    def subpaths_per_flow(self, n_flows: int) -> np.ndarray:
        """How many sub-paths each flow owns."""
        return np.bincount(self.flow, minlength=n_flows)


def _local_route(
    top: DragonflyTopology,
    src_r: np.ndarray,
    dst_r: np.ndarray,
    rank1_first: np.ndarray,
    out: np.ndarray,
    col0: int,
) -> None:
    """Fill the (up to 2) intra-group links from ``src_r`` to ``dst_r``.

    Both router arrays must be in the same group element-wise.  Writes the
    link ids into ``out[:, col0]`` and ``out[:, col0 + 1]``; leaves ``-1``
    where no hop is needed.  ``rank1_first`` selects the dimension order
    for the two-hop case (both orders are minimal on Aries).
    """
    g = top.router_group(src_r)
    c1 = top.router_chassis(src_r)
    s1 = top.router_slot(src_r)
    c2 = top.router_chassis(dst_r)
    s2 = top.router_slot(dst_r)

    same = src_r == dst_r
    same_chassis = (~same) & (c1 == c2)
    same_slot = (~same) & (s1 == s2)
    two_hop = (~same) & (c1 != c2) & (s1 != s2)

    # single-hop cases
    idx = np.flatnonzero(same_chassis)
    if idx.size:
        out[idx, col0] = top.rank1_link(g[idx], c1[idx], s1[idx], s2[idx])
    idx = np.flatnonzero(same_slot)
    if idx.size:
        out[idx, col0] = top.rank2_link(g[idx], s1[idx], c1[idx], c2[idx])

    # two-hop cases, rank-1 first: row move in src chassis, then column
    idx = np.flatnonzero(two_hop & rank1_first)
    if idx.size:
        out[idx, col0] = top.rank1_link(g[idx], c1[idx], s1[idx], s2[idx])
        out[idx, col0 + 1] = top.rank2_link(g[idx], s2[idx], c1[idx], c2[idx])

    # two-hop cases, rank-2 first: column move, then row in dst chassis
    idx = np.flatnonzero(two_hop & ~rank1_first)
    if idx.size:
        out[idx, col0] = top.rank2_link(g[idx], s1[idx], c1[idx], c2[idx])
        out[idx, col0 + 1] = top.rank1_link(g[idx], c2[idx], s1[idx], s2[idx])


def _sample_distinct(rng: np.random.Generator, n: int, k: int, modulus: int) -> np.ndarray:
    """Sample ``k`` distinct values per row from ``range(modulus)``.

    Uses a random base + unit stride, which is distinct as long as
    ``k <= modulus`` and is dramatically cheaper than per-row permutation.
    """
    if k > modulus:
        raise ValueError(f"cannot sample {k} distinct values from {modulus}")
    base = rng.integers(0, modulus, size=n)
    return (base[:, None] + np.arange(k)[None, :]) % modulus


def minimal_paths(
    top: DragonflyTopology,
    src_node: np.ndarray,
    dst_node: np.ndarray,
    *,
    k: int = 2,
    rng: np.random.Generator,
) -> PathBundle:
    """Build ``k`` minimal candidate sub-paths per flow.

    Inter-group flows get ``k`` sub-paths over distinct rank-3 cables of the
    direct group-pair bundle (capped by the bundle size); intra-group flows
    get ``k`` sub-paths that differ in local-leg dimension order.
    """
    src_node = np.asarray(src_node, dtype=np.int64)
    dst_node = np.asarray(dst_node, dtype=np.int64)
    if src_node.shape != dst_node.shape:
        raise ValueError("src_node and dst_node must have the same shape")
    if np.any(src_node == dst_node):
        raise ValueError("self-flows are not allowed; filter them upstream")
    n = src_node.size
    K = top.params.cables_per_group_pair
    k_eff = min(k, K)

    flow = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    src = np.repeat(src_node, k_eff)
    dst = np.repeat(dst_node, k_eff)
    src_r = top.node_router(src)
    dst_r = top.node_router(dst)
    g_src = top.router_group(src_r)
    g_dst = top.router_group(dst_r)

    m = flow.size
    links = np.full((m, MAX_HOPS), -1, dtype=np.int64)
    links[:, _COL_INJ] = top.injection_link(src)
    links[:, _COL_EJE] = top.ejection_link(dst)
    rank1_first = rng.integers(0, 2, size=m).astype(bool)

    intra = g_src == g_dst
    idx = np.flatnonzero(intra)
    if idx.size:
        sub = links[idx]
        _local_route(top, src_r[idx], dst_r[idx], rank1_first[idx], sub, _COL_LOCAL_A)
        links[idx] = sub

    idx = np.flatnonzero(~intra)
    if idx.size:
        cables = _sample_distinct(rng, n, k_eff, K).reshape(-1)[idx]
        ga, gb = g_src[idx], g_dst[idx]
        gw_a = top.gateway_router(ga, gb, cables)
        gw_b = top.gateway_router(gb, ga, cables)
        sub = links[idx]
        _local_route(top, src_r[idx], gw_a, rank1_first[idx], sub, _COL_LOCAL_A)
        sub[:, _COL_GLOBAL_1] = top.rank3_link(ga, gb, cables)
        _local_route(top, gw_b, dst_r[idx], ~rank1_first[idx], sub, _COL_LOCAL_B)
        links[idx] = sub

    if top.fault_scale is not None:
        links = _repair_faulted(top, links, flow, src, dst, rng, prefer_minimal=True)
    return PathBundle(links=links, flow=flow, kind="minimal")


def valiant_paths(
    top: DragonflyTopology,
    src_node: np.ndarray,
    dst_node: np.ndarray,
    *,
    k: int = 2,
    rng: np.random.Generator,
) -> PathBundle:
    """Build ``k`` non-minimal (Valiant) candidate sub-paths per flow.

    Inter-group flows detour through ``k`` distinct intermediate groups
    (two global hops each); intra-group flows detour through a random
    intermediate router of the same group.
    """
    src_node = np.asarray(src_node, dtype=np.int64)
    dst_node = np.asarray(dst_node, dtype=np.int64)
    if src_node.shape != dst_node.shape:
        raise ValueError("src_node and dst_node must have the same shape")
    if np.any(src_node == dst_node):
        raise ValueError("self-flows are not allowed; filter them upstream")
    n = src_node.size
    G = top.n_groups
    K = top.params.cables_per_group_pair
    k_eff = min(k, max(G - 2, 1))

    flow = np.repeat(np.arange(n, dtype=np.int64), k_eff)
    src = np.repeat(src_node, k_eff)
    dst = np.repeat(dst_node, k_eff)
    src_r = top.node_router(src)
    dst_r = top.node_router(dst)
    g_src = top.router_group(src_r)
    g_dst = top.router_group(dst_r)

    m = flow.size
    links = np.full((m, MAX_HOPS), -1, dtype=np.int64)
    links[:, _COL_INJ] = top.injection_link(src)
    links[:, _COL_EJE] = top.ejection_link(dst)
    rank1_first = rng.integers(0, 2, size=m).astype(bool)

    intra = g_src == g_dst
    idx = np.flatnonzero(intra)
    if idx.size:
        # detour via a random distinct router of the same group
        Rg = top.routers_per_group
        via_local = rng.integers(0, Rg, size=idx.size)
        via = g_src[idx] * Rg + via_local
        clash = (via == src_r[idx]) | (via == dst_r[idx])
        via = np.where(clash, g_src[idx] * Rg + (via_local + 1) % Rg, via)
        # a second collision is possible when Rg is tiny; nudge once more
        clash = (via == src_r[idx]) | (via == dst_r[idx])
        via = np.where(clash, g_src[idx] * Rg + (via_local + 2) % Rg, via)
        sub = links[idx]
        _local_route(top, src_r[idx], via, rank1_first[idx], sub, _COL_LOCAL_A)
        _local_route(top, via, dst_r[idx], ~rank1_first[idx], sub, _COL_LOCAL_B)
        links[idx] = sub

    idx = np.flatnonzero(~intra)
    if idx.size and G == 2:
        # A 2-group dragonfly has no intermediate group; the only
        # non-minimal diversity is over cables, with a forced detour
        # through a random gateway.  Emit minimal-shaped paths over
        # random cables so the bias machinery still has two path sets.
        cables = rng.integers(0, K, size=idx.size)
        ga, gb = g_src[idx], g_dst[idx]
        gw_a = top.gateway_router(ga, gb, cables)
        gw_b = top.gateway_router(gb, ga, cables)
        sub = links[idx]
        _local_route(top, src_r[idx], gw_a, rank1_first[idx], sub, _COL_LOCAL_A)
        sub[:, _COL_GLOBAL_1] = top.rank3_link(ga, gb, cables)
        _local_route(top, gw_b, dst_r[idx], ~rank1_first[idx], sub, _COL_LOCAL_B)
        links[idx] = sub
    elif idx.size:
        # distinct intermediate groups, skipping src and dst groups
        raw = _sample_distinct(rng, n, k_eff, max(G - 2, 1)).reshape(-1)[idx]
        lo = np.minimum(g_src[idx], g_dst[idx])
        hi = np.maximum(g_src[idx], g_dst[idx])
        g_int = raw + (raw >= lo) + (raw + (raw >= lo) >= hi)
        cab1 = rng.integers(0, K, size=idx.size)
        cab2 = rng.integers(0, K, size=idx.size)
        ga, gb = g_src[idx], g_dst[idx]
        gw1_a = top.gateway_router(ga, g_int, cab1)
        gw1_b = top.gateway_router(g_int, ga, cab1)
        gw2_a = top.gateway_router(g_int, gb, cab2)
        gw2_b = top.gateway_router(gb, g_int, cab2)
        sub = links[idx]
        _local_route(top, src_r[idx], gw1_a, rank1_first[idx], sub, _COL_LOCAL_A)
        sub[:, _COL_GLOBAL_1] = top.rank3_link(ga, g_int, cab1)
        _local_route(top, gw1_b, gw2_a, ~rank1_first[idx], sub, _COL_LOCAL_B)
        sub[:, _COL_GLOBAL_2] = top.rank3_link(g_int, gb, cab2)
        _local_route(top, gw2_b, dst_r[idx], rank1_first[idx], sub, _COL_LOCAL_C)
        links[idx] = sub

    if top.fault_scale is not None:
        links = _repair_faulted(top, links, flow, src, dst, rng, prefer_minimal=False)
    return PathBundle(links=links, flow=flow, kind="nonminimal")


# ----------------------------------------------------------------------
# fault-aware repair (only reached on a fault-masked topology view)
# ----------------------------------------------------------------------

def _scalar_local(
    top: DragonflyTopology,
    r_a: int,
    r_b: int,
    dead: np.ndarray,
    rng: np.random.Generator,
) -> list[int] | None:
    """An alive intra-group route of at most 2 hops, or ``None``.

    Tries the direct link / both two-hop dimension orders first, then
    same-dimension detours through a third slot or chassis.  Routes of
    3+ local hops do not fit the fixed path layout and are treated as
    unreachable (the surviving-gateway search above compensates).
    """
    if r_a == r_b:
        return []
    g = int(top.router_group(r_a))
    c1, s1 = int(top.router_chassis(r_a)), int(top.router_slot(r_a))
    c2, s2 = int(top.router_chassis(r_b)), int(top.router_slot(r_b))
    R = top.params.routers_per_chassis
    C = top.params.chassis_per_group
    if c1 == c2:
        direct = int(top.rank1_link(g, c1, s1, s2))
        if not dead[direct]:
            return [direct]
        for k in rng.permutation(R):
            k = int(k)
            if k == s1 or k == s2:
                continue
            l1 = int(top.rank1_link(g, c1, s1, k))
            l2 = int(top.rank1_link(g, c1, k, s2))
            if not dead[l1] and not dead[l2]:
                return [l1, l2]
        return None
    if s1 == s2:
        direct = int(top.rank2_link(g, s1, c1, c2))
        if not dead[direct]:
            return [direct]
        for m in rng.permutation(C):
            m = int(m)
            if m == c1 or m == c2:
                continue
            l1 = int(top.rank2_link(g, s1, c1, m))
            l2 = int(top.rank2_link(g, s1, m, c2))
            if not dead[l1] and not dead[l2]:
                return [l1, l2]
        return None
    orders = [
        (int(top.rank1_link(g, c1, s1, s2)), int(top.rank2_link(g, s2, c1, c2))),
        (int(top.rank2_link(g, s1, c1, c2)), int(top.rank1_link(g, c2, s1, s2))),
    ]
    if rng.integers(0, 2):
        orders.reverse()
    for l1, l2 in orders:
        if not dead[l1] and not dead[l2]:
            return [l1, l2]
    return None


def _place(row: list[int], col0: int, legs: list[int]) -> None:
    for off, link in enumerate(legs):
        row[col0 + off] = link


def _scalar_route(
    top: DragonflyTopology,
    s_node: int,
    d_node: int,
    dead: np.ndarray,
    rng: np.random.Generator,
    *,
    prefer_minimal: bool,
    max_detour_groups: int = 8,
    max_detour_cables: int = 4,
) -> list[int] | None:
    """Rebuild one candidate sub-path around dead links.

    Returns a ``MAX_HOPS`` row or ``None`` when the bounded search finds
    no surviving route.  Raises :class:`NetworkPartitionedError`
    immediately when an endpoint's own NIC link is dead (its router is
    down): no route can exist.
    """
    inj = int(top.injection_link(s_node))
    eje = int(top.ejection_link(d_node))
    if dead[inj] or dead[eje]:
        downed = s_node if dead[inj] else d_node
        raise NetworkPartitionedError(
            f"node {downed} sits on a dead router/NIC; "
            f"flow {s_node}->{d_node} cannot be routed"
        )
    src_r = int(top.node_router(s_node))
    dst_r = int(top.node_router(d_node))
    g_s = src_r // top.routers_per_group
    g_d = dst_r // top.routers_per_group
    G, K = top.n_groups, top.params.cables_per_group_pair
    row = [-1] * MAX_HOPS
    row[_COL_INJ] = inj
    row[_COL_EJE] = eje

    if g_s == g_d:
        legs = _scalar_local(top, src_r, dst_r, dead, rng)
        if legs is not None:
            _place(row, _COL_LOCAL_A, legs)
            return row
        Rg = top.routers_per_group
        for v in rng.permutation(Rg)[: max(8, Rg // 4)]:
            via = g_s * Rg + int(v)
            if via == src_r or via == dst_r:
                continue
            a = _scalar_local(top, src_r, via, dead, rng)
            b = _scalar_local(top, via, dst_r, dead, rng)
            if a is not None and b is not None:
                _place(row, _COL_LOCAL_A, a)
                _place(row, _COL_LOCAL_B, b)
                return row
        return None

    def _direct() -> list[int] | None:
        for c in rng.permutation(K):
            c = int(c)
            l3 = int(top.rank3_link(g_s, g_d, c))
            if dead[l3]:
                continue
            gw_a = int(top.gateway_router(g_s, g_d, c))
            gw_b = int(top.gateway_router(g_d, g_s, c))
            a = _scalar_local(top, src_r, gw_a, dead, rng)
            b = _scalar_local(top, gw_b, dst_r, dead, rng)
            if a is not None and b is not None:
                out = list(row)
                _place(out, _COL_LOCAL_A, a)
                out[_COL_GLOBAL_1] = l3
                _place(out, _COL_LOCAL_B, b)
                return out
        return None

    def _detour() -> list[int] | None:
        others = [g for g in range(G) if g != g_s and g != g_d]
        if not others:
            return None
        for oi in rng.permutation(len(others))[:max_detour_groups]:
            g_int = others[int(oi)]
            for c1 in rng.permutation(K)[:max_detour_cables]:
                c1 = int(c1)
                l3a = int(top.rank3_link(g_s, g_int, c1))
                if dead[l3a]:
                    continue
                gw1_a = int(top.gateway_router(g_s, g_int, c1))
                gw1_b = int(top.gateway_router(g_int, g_s, c1))
                a = _scalar_local(top, src_r, gw1_a, dead, rng)
                if a is None:
                    continue
                for c2 in rng.permutation(K)[:max_detour_cables]:
                    c2 = int(c2)
                    l3b = int(top.rank3_link(g_int, g_d, c2))
                    if dead[l3b]:
                        continue
                    gw2_a = int(top.gateway_router(g_int, g_d, c2))
                    gw2_b = int(top.gateway_router(g_d, g_int, c2))
                    b = _scalar_local(top, gw1_b, gw2_a, dead, rng)
                    tail = _scalar_local(top, gw2_b, dst_r, dead, rng)
                    if b is not None and tail is not None:
                        out = list(row)
                        _place(out, _COL_LOCAL_A, a)
                        out[_COL_GLOBAL_1] = l3a
                        _place(out, _COL_LOCAL_B, b)
                        out[_COL_GLOBAL_2] = l3b
                        _place(out, _COL_LOCAL_C, tail)
                        return out
        return None

    first, second = (_direct, _detour) if prefer_minimal else (_detour, _direct)
    return first() or second()


def _repair_faulted(
    top: DragonflyTopology,
    links: np.ndarray,
    flow: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    rng: np.random.Generator,
    *,
    prefer_minimal: bool,
) -> np.ndarray:
    """Replace sub-paths that traverse zero-capacity links.

    Rows whose links all survive are left untouched (and consume no
    extra RNG draws), so a fault that spares a flow cannot perturb it.
    Broken rows are rebuilt by the scalar fallback search; rows the
    search cannot rebuild are replaced with a duplicate of a surviving
    row of the same flow.  A flow left with no surviving row raises
    :class:`NetworkPartitionedError` — the fabric is partitioned for
    that flow.
    """
    dead = top.capacity <= 0.0
    used = links >= 0
    broken = (used & dead[np.where(used, links, 0)]).any(axis=1)
    if not broken.any():
        return links
    alive_row = ~broken
    for i in np.flatnonzero(broken):
        row = _scalar_route(
            top, int(src[i]), int(dst[i]), dead, rng, prefer_minimal=prefer_minimal
        )
        if row is not None:
            links[i] = row
            alive_row[i] = True
    for i in np.flatnonzero(~alive_row):
        same = np.flatnonzero((flow == flow[i]) & alive_row)
        if same.size == 0:
            raise NetworkPartitionedError(
                f"flow {int(src[i])}->{int(dst[i])} has no surviving path "
                f"(all candidates and detours traverse dead links)"
            )
        links[i] = links[same[0]]
    return links
