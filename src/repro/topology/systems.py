"""System presets: Theta, Cori, and scaled-down variants for tests.

Numbers follow Section II of the paper:

* **Theta** (ALCF): 4392 KNL compute nodes, 12 dragonfly groups, 12 active
  optical cables (3 lanes each) between each pair of groups.
* **Cori** (NERSC): 9668 KNL compute nodes on the same XC-40 topology, but
  only 4 cables per group-to-group connection — a reduced
  bisection-to-injection ratio.  The paper does not state Cori's group
  count; its Fig. 4 shows jobs spanning up to 27 groups, so we size the
  KNL partition at 28 groups (10752 node slots >= 9668).
* Copper (rank-1/rank-2) links: 10.5 GB/s bidirectional each; optical
  (rank-3): 9.38 GB/s per link.
"""

from __future__ import annotations

from repro.topology.dragonfly import DragonflyParams, DragonflyTopology


def theta(*, seed: int = 0) -> DragonflyTopology:
    """ALCF Theta: 12 groups, 4392 KNL nodes, 12 cables per group pair."""
    return DragonflyTopology(
        DragonflyParams(
            name="theta",
            n_groups=12,
            n_compute_nodes=4392,
            cables_per_group_pair=12,
        ),
        seed=seed,
    )


def cori(*, seed: int = 0) -> DragonflyTopology:
    """NERSC Cori (KNL partition): 28 groups, 9668 nodes, 4 cables/pair."""
    return DragonflyTopology(
        DragonflyParams(
            name="cori",
            n_groups=28,
            n_compute_nodes=9668,
            cables_per_group_pair=4,
        ),
        seed=seed,
    )


def mini(*, n_groups: int = 4, seed: int = 0) -> DragonflyTopology:
    """A small but structurally complete system for fast integration tests.

    Keeps the 3-level structure (2 chassis x 8 routers per group, 2 nodes
    per router) while shrinking every dimension.
    """
    return DragonflyTopology(
        DragonflyParams(
            name=f"mini{n_groups}",
            n_groups=n_groups,
            chassis_per_group=2,
            routers_per_chassis=8,
            nodes_per_router=2,
            cables_per_group_pair=4,
        ),
        seed=seed,
    )


def slingshot(*, n_groups: int = 16, seed: int = 0) -> DragonflyTopology:
    """A Slingshot-generation dragonfly (Perlmutter-like scale).

    The paper's Section II-A argues its insights transfer to the
    upcoming Cray Slingshot systems "because on any dragonfly system
    applications will have a preference for minimal or non-minimal
    routes".  Slingshot groups are a single-level all-to-all of 64-port
    switches (no chassis/column split), with 16 endpoints per switch and
    faster (25 GB/s-class) links; we model a group as one 32-switch
    "chassis" so the rank-1 tier is the intra-group all-to-all and the
    rank-2 tier is absent.
    """
    return DragonflyTopology(
        DragonflyParams(
            name="slingshot",
            n_groups=n_groups,
            chassis_per_group=1,
            routers_per_chassis=32,
            nodes_per_router=16,
            cables_per_group_pair=8,
            lanes_per_cable=1,
            rank1_bw_bidir=25.0e9,
            rank2_bw_bidir=25.0e9,
            rank3_bw_bidir=25.0e9,
            nic_bw_bidir=25.0e9,
        ),
        seed=seed,
    )


def toy(*, seed: int = 0) -> DragonflyTopology:
    """The smallest meaningful dragonfly, for unit tests and the packet sim.

    2 groups x (2 chassis x 4 routers) x 2 nodes = 32 nodes.
    """
    return DragonflyTopology(
        DragonflyParams(
            name="toy",
            n_groups=2,
            chassis_per_group=2,
            routers_per_chassis=4,
            nodes_per_router=2,
            cables_per_group_pair=2,
            lanes_per_cable=1,
        ),
        seed=seed,
    )
