"""Aries router tile inventory.

Each Aries router has 48 tiles: 40 **network tiles** (15 green rank-1,
15 grey rank-2 — three tiles per peer chassis times five peers — and 10
blue rank-3) and 8 **processor tiles** connecting the router's four NICs.
Request and response traffic use separate virtual channels on the
processor tiles; the paper analyzes them separately (``Proc_req`` /
``Proc_rsp`` in Fig. 6).

The congestion engines track loads per *link*; this inventory supplies the
per-router tile counts used to normalize those loads into per-tile counter
values, matching how AutoPerf/LDMS report them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileInventory:
    """Tile counts per router, by class."""

    rank1: int
    rank2: int
    rank3: int
    proc: int

    @classmethod
    def aries(cls) -> "TileInventory":
        """The Cray Aries tile layout (48 tiles total)."""
        return cls(rank1=15, rank2=15, rank3=10, proc=8)

    @property
    def network(self) -> int:
        """Number of network (non-processor) tiles."""
        return self.rank1 + self.rank2 + self.rank3

    @property
    def total(self) -> int:
        return self.network + self.proc

    def count_for(self, class_name: str) -> int:
        """Tile count for a class name used in counter reports.

        Accepts ``rank1|rank2|rank3|proc_req|proc_rsp|proc``; the two
        processor VCs share the same physical tiles.
        """
        key = class_name.lower()
        if key in ("proc_req", "proc_rsp", "proc"):
            return self.proc
        if key in ("rank1", "rank2", "rank3"):
            return getattr(self, key)
        raise KeyError(f"unknown tile class {class_name!r}")
