"""Memoized minimal/Valiant path-table construction.

Building path bundles is the single most expensive pure step of a fluid
solve, and campaign sweeps repeatedly rebuild identical tables — e.g.
``sweep_parameter`` re-runs the same seeded campaign once per candidate
constant, so every (placement, flow set, RNG stream) triple recurs
exactly.  This module wraps :func:`repro.topology.paths.minimal_paths` /
``valiant_paths`` in a bounded LRU memo that is *provably* transparent:

* The key includes a fingerprint of the topology **structure and fault
  mask**, the builder kind and ``k``, digests of the ``src``/``dst``
  arrays, and a digest of the generator's **pre-call bit state**.
* On a miss, the real builder runs and the generator's **post-call bit
  state** is recorded alongside the bundle.
* On a hit, the caller's generator is fast-forwarded to the recorded
  post-call state and the cached bundle is returned.

Because the bit-generator state fully determines every draw the builder
would make, a hit returns byte-identical arrays *and* leaves the
generator byte-identical to a fresh build — downstream draws cannot
diverge.  Cached arrays are frozen read-only and shared (never copied),
so a would-be mutation raises instead of poisoning later hits.

Set ``REPRO_PATH_CACHE=0`` to disable, or to an integer to change the
entry cap (default ``16``).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.topology.dragonfly import DragonflyTopology
from repro.topology.paths import PathBundle, minimal_paths, valiant_paths

# Sized for the packet simulator's per-message registration pattern (two
# entries per message, a few dozen messages per microbenchmark round) on
# top of campaign fluid solves (a handful of large bundles).  Worst-case
# resident set is maxsize x the largest bundle (~1.4 MB at 4k flows).
_DEFAULT_MAXSIZE = 48

_lock = threading.Lock()
_store: OrderedDict[tuple, tuple[PathBundle, dict]] = OrderedDict()
_stats = {"hits": 0, "misses": 0, "evictions": 0}


def _maxsize() -> int:
    raw = os.environ.get("REPRO_PATH_CACHE", "")
    if not raw:
        return _DEFAULT_MAXSIZE
    try:
        return max(0, int(raw))
    except ValueError:
        return _DEFAULT_MAXSIZE


def topology_fingerprint(top: DragonflyTopology) -> tuple:
    """Hashable identity of a topology's structure plus fault mask.

    ``(params, seed)`` fully determine the pristine structure (cable
    assignment included); a faulted view additionally contributes a
    digest of its per-link capacity multipliers.  Two topologies with
    equal fingerprints produce identical path tables for identical
    ``(src, dst, k, rng)`` inputs.
    """
    if top.fault_scale is None:
        fault_digest = ""
    else:
        scale = np.ascontiguousarray(top.fault_scale, dtype=np.float64)
        fault_digest = hashlib.sha1(scale.tobytes()).hexdigest()
    return (top.params, top.seed, fault_digest)


def _array_digest(a: np.ndarray) -> tuple:
    a = np.ascontiguousarray(a)
    return (str(a.dtype), a.shape, hashlib.sha1(a.tobytes()).hexdigest())


def _rng_state_digest(rng: np.random.Generator) -> str:
    # the state dict is a plain nested structure of ints/strings whose
    # repr is stable for a given bit-generator type
    return hashlib.sha1(repr(rng.bit_generator.state).encode("utf-8")).hexdigest()


def _freeze(bundle: PathBundle) -> PathBundle:
    bundle.links.flags.writeable = False
    bundle.flow.flags.writeable = False
    return bundle


def _memoized(
    kind: str,
    builder: Callable[..., PathBundle],
    top: DragonflyTopology,
    src: np.ndarray,
    dst: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> PathBundle:
    maxsize = _maxsize()
    if maxsize == 0:
        return builder(top, src, dst, k=k, rng=rng)
    key = (
        topology_fingerprint(top),
        kind,
        int(k),
        _array_digest(np.asarray(src)),
        _array_digest(np.asarray(dst)),
        type(rng.bit_generator).__name__,
        _rng_state_digest(rng),
    )
    with _lock:
        hit = _store.get(key)
        if hit is not None:
            _store.move_to_end(key)
            _stats["hits"] += 1
    if hit is not None:
        bundle, post_state = hit
        rng.bit_generator.state = post_state
        return bundle
    bundle = _freeze(builder(top, src, dst, k=k, rng=rng))
    with _lock:
        _stats["misses"] += 1
        _store[key] = (bundle, rng.bit_generator.state)
        _store.move_to_end(key)
        while len(_store) > maxsize:
            _store.popitem(last=False)
            _stats["evictions"] += 1
    return bundle


def cached_minimal_paths(
    top: DragonflyTopology,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    k: int = 2,
    rng: np.random.Generator,
) -> PathBundle:
    """Memoizing drop-in for :func:`repro.topology.paths.minimal_paths`."""
    return _memoized("minimal", minimal_paths, top, src, dst, k, rng)


def cached_valiant_paths(
    top: DragonflyTopology,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    k: int = 2,
    rng: np.random.Generator,
) -> PathBundle:
    """Memoizing drop-in for :func:`repro.topology.paths.valiant_paths`."""
    return _memoized("nonminimal", valiant_paths, top, src, dst, k, rng)


def path_cache_stats() -> dict[str, int]:
    """Current hit/miss/eviction counters plus entry count."""
    with _lock:
        return {**_stats, "entries": len(_store)}


def clear_path_cache() -> None:
    """Drop all cached path tables and reset counters."""
    with _lock:
        _store.clear()
        _stats.update(hits=0, misses=0, evictions=0)
