"""Parametric Aries dragonfly structure with flat directed-link tables.

Geometry (Cray XC-40, following Alverson et al., "Cray XC Series Network"):

* a **group** is ``chassis_per_group`` chassis of ``routers_per_chassis``
  Aries routers (6 x 16 = 96 on Theta/Cori),
* **rank-1** links connect every router pair within a chassis (a "row"),
* **rank-2** links connect, for each slot position, every chassis pair
  within the group (a "column"); each rank-2 connection is a bundle of
  ``rank2_links_per_bundle`` (3) physical links which we aggregate,
* **rank-3** optical cables connect groups; each group pair is wired with
  ``cables_per_group_pair`` cables of ``lanes_per_cable`` lanes, and each
  cable lands on a specific (gateway) router in each group,
* each router hosts ``nodes_per_router`` (4) nodes via processor tiles.

All links are represented **directed** in a single flat numbering so the
congestion engines can accumulate loads with ``np.add.at`` over plain
integer arrays.  The transmit side of a directed link is attributed to the
source router's tiles for counter purposes.

Link-id layout (contiguous blocks)::

    [rank-1 | rank-2 | rank-3 | injection (per node) | ejection (per node)]

Rank-1 and rank-3 blocks are allocated as dense cubes including the unused
diagonal (a router has no link to itself, a group none to itself); those
slots have zero capacity and are never emitted by the path builders, at the
cost of a few unused array entries and O(1) id arithmetic in return.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.util import GB, check_positive
from repro.topology.tiles import TileInventory


class LinkClass(IntEnum):
    """Directed-link classes, matching the paper's tile taxonomy."""

    RANK1 = 0  # green tiles: intra-chassis row links
    RANK2 = 1  # grey tiles: intra-group column bundles
    RANK3 = 2  # blue tiles: inter-group optical cables
    INJECTION = 3  # processor tiles, node -> router
    EJECTION = 4  # processor tiles, router -> node


@dataclass(frozen=True)
class DragonflyParams:
    """Static description of a dragonfly system.

    Bandwidths are quoted *bidirectional* per link, as in the paper
    (Section II-A); the topology converts them to per-direction capacities.
    """

    name: str
    n_groups: int
    chassis_per_group: int = 6
    routers_per_chassis: int = 16
    nodes_per_router: int = 4
    n_compute_nodes: int | None = None
    cables_per_group_pair: int = 12
    lanes_per_cable: int = 3
    rank2_links_per_bundle: int = 3
    rank1_bw_bidir: float = 10.5 * GB
    rank2_bw_bidir: float = 10.5 * GB
    rank3_bw_bidir: float = 9.38 * GB  # per lane
    nic_bw_bidir: float = 10.0 * GB  # per node NIC
    def __post_init__(self) -> None:
        check_positive("n_groups", self.n_groups)
        check_positive("chassis_per_group", self.chassis_per_group)
        check_positive("routers_per_chassis", self.routers_per_chassis)
        check_positive("nodes_per_router", self.nodes_per_router)
        check_positive("cables_per_group_pair", self.cables_per_group_pair)
        check_positive("lanes_per_cable", self.lanes_per_cable)
        if self.n_groups < 2:
            raise ValueError("a dragonfly needs at least 2 groups")
        cap = (
            self.n_groups
            * self.chassis_per_group
            * self.routers_per_chassis
            * self.nodes_per_router
        )
        n = self.n_compute_nodes
        if n is not None and not (0 < n <= cap):
            raise ValueError(
                f"n_compute_nodes={n} exceeds node capacity {cap} of {self.name}"
            )

    @property
    def routers_per_group(self) -> int:
        return self.chassis_per_group * self.routers_per_chassis

    @property
    def n_routers(self) -> int:
        return self.n_groups * self.routers_per_group

    @property
    def node_capacity(self) -> int:
        return self.n_routers * self.nodes_per_router

    @property
    def n_nodes(self) -> int:
        """Number of usable compute nodes (<= capacity)."""
        return self.n_compute_nodes if self.n_compute_nodes is not None else self.node_capacity


class DragonflyTopology:
    """Concrete dragonfly with directed-link tables and index arithmetic.

    Parameters
    ----------
    params:
        Static system description.
    seed:
        Seed for the deterministic cable-to-gateway-router assignment.
        The assignment is round-robin with a seeded offset per group pair,
        mirroring how real systems spread optical cables across routers.
    """

    MAX_LOCAL_HOPS = 2  # longest minimal route within a group (rank1 + rank2)

    def __init__(self, params: DragonflyParams, *, seed: int = 0) -> None:
        self.params = params
        #: cable-assignment seed; with ``params`` it fully determines the
        #: structure, so ``DragonflyTopology(top.params, seed=top.seed)``
        #: rebuilds an identical system (the parallel workers rely on this)
        self.seed = seed
        p = params
        G, C, R = p.n_groups, p.chassis_per_group, p.routers_per_chassis
        self.n_groups = G
        self.routers_per_group = p.routers_per_group
        self.n_routers = p.n_routers
        self.n_nodes = p.n_nodes
        self.nodes_per_router = p.nodes_per_router

        # --- link-block layout -------------------------------------------
        self._r1_per_chassis = R * R  # dense (i, j) cube incl. diagonal
        self._n_r1 = G * C * self._r1_per_chassis
        self._r2_per_slot = C * C
        self._n_r2 = G * R * self._r2_per_slot
        self._n_r3 = G * G * p.cables_per_group_pair
        self._n_proc = p.n_nodes

        self.r1_base = 0
        self.r2_base = self.r1_base + self._n_r1
        self.r3_base = self.r2_base + self._n_r2
        self.inj_base = self.r3_base + self._n_r3
        self.eje_base = self.inj_base + self._n_proc
        self.n_links = self.eje_base + self._n_proc

        # --- per-link capacity (bytes/s, per direction) and class --------
        cap = np.zeros(self.n_links, dtype=np.float64)
        cls = np.full(self.n_links, -1, dtype=np.int8)
        src_router = np.full(self.n_links, -1, dtype=np.int32)
        dst_router = np.full(self.n_links, -1, dtype=np.int32)

        self._fill_rank1(cap, cls, src_router, dst_router)
        self._fill_rank2(cap, cls, src_router, dst_router)
        self._fill_rank3(cap, cls, src_router, dst_router, seed)
        self._fill_proc(cap, cls, src_router, dst_router)

        self.capacity = cap
        self.link_class = cls
        self.link_src_router = src_router
        self.link_dst_router = dst_router
        self.tiles = TileInventory.aries()
        #: per-link capacity multiplier of an applied fault view, or
        #: ``None`` on a pristine topology (see :meth:`with_faults`)
        self.fault_scale: np.ndarray | None = None
        #: the unmasked capacities; identical to ``capacity`` when pristine
        self.base_capacity = cap

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _fill_rank1(self, cap, cls, srcr, dstr) -> None:
        p = self.params
        G, C, R = p.n_groups, p.chassis_per_group, p.routers_per_chassis
        per_dir = p.rank1_bw_bidir / 2.0
        g, c, i, j = np.meshgrid(
            np.arange(G), np.arange(C), np.arange(R), np.arange(R), indexing="ij"
        )
        ids = self.r1_base + ((g * C + c) * R + i) * R + j
        off_diag = (i != j).ravel()
        ids = ids.ravel()[off_diag]
        cap[ids] = per_dir
        cls[ids] = LinkClass.RANK1
        srcr[ids] = ((g * C + c) * R + i).ravel()[off_diag]
        dstr[ids] = ((g * C + c) * R + j).ravel()[off_diag]

    def _fill_rank2(self, cap, cls, srcr, dstr) -> None:
        p = self.params
        G, C, R = p.n_groups, p.chassis_per_group, p.routers_per_chassis
        per_dir = p.rank2_bw_bidir / 2.0 * p.rank2_links_per_bundle
        g, s, a, b = np.meshgrid(
            np.arange(G), np.arange(R), np.arange(C), np.arange(C), indexing="ij"
        )
        ids = self.r2_base + ((g * R + s) * C + a) * C + b
        off_diag = (a != b).ravel()
        ids = ids.ravel()[off_diag]
        cap[ids] = per_dir
        cls[ids] = LinkClass.RANK2
        srcr[ids] = ((g * C + a) * R + s).ravel()[off_diag]
        dstr[ids] = ((g * C + b) * R + s).ravel()[off_diag]

    def _fill_rank3(self, cap, cls, srcr, dstr, seed: int) -> None:
        p = self.params
        G, K = p.n_groups, p.cables_per_group_pair
        per_dir = p.rank3_bw_bidir / 2.0 * p.lanes_per_cable
        rng = np.random.default_rng(seed)
        # cable_gw[g, h, k] = gateway router index *within group g* carrying
        # cable k of the (g, h) bundle.  Round-robin with a random per-pair
        # offset spreads gateways across the group deterministically.
        Rg = self.routers_per_group
        offs = rng.integers(0, Rg, size=(G, G))
        k = np.arange(K)
        stride = max(1, Rg // max(K, 1))
        gw = (offs[:, :, None] + k[None, None, :] * stride) % Rg
        self.cable_gateway = gw.astype(np.int32)  # (G, G, K), local router idx

        g, h, kk = np.meshgrid(np.arange(G), np.arange(G), k, indexing="ij")
        ids = self.r3_base + (g * G + h) * K + kk
        off_diag = (g != h).ravel()
        ids = ids.ravel()[off_diag]
        cap[ids] = per_dir
        cls[ids] = LinkClass.RANK3
        # transmit gateway sits in group g; receive gateway is the cable's
        # landing router in group h (the reverse cable's gateway).
        srcr[ids] = (g * Rg + gw[g, h, kk]).ravel()[off_diag]
        dstr[ids] = (h * Rg + gw[h, g, kk]).ravel()[off_diag]

    def _fill_proc(self, cap, cls, srcr, dstr) -> None:
        p = self.params
        per_dir = p.nic_bw_bidir / 2.0
        nodes = np.arange(p.n_nodes)
        routers = nodes // p.nodes_per_router
        inj = self.inj_base + nodes
        eje = self.eje_base + nodes
        cap[inj] = per_dir
        cls[inj] = LinkClass.INJECTION
        srcr[inj] = routers
        dstr[inj] = routers
        cap[eje] = per_dir
        cls[eje] = LinkClass.EJECTION
        srcr[eje] = routers
        dstr[eje] = routers

    # ------------------------------------------------------------------
    # index arithmetic (all vectorized: accept scalars or arrays)
    # ------------------------------------------------------------------
    def node_router(self, node):
        """Router index hosting ``node``."""
        return np.asarray(node) // self.params.nodes_per_router

    def router_group(self, router):
        """Group index of ``router``."""
        return np.asarray(router) // self.routers_per_group

    def node_group(self, node):
        """Group index hosting ``node``."""
        return self.node_router(node) // self.routers_per_group

    def router_chassis(self, router):
        """Chassis index (within its group) of ``router``."""
        r = np.asarray(router) % self.routers_per_group
        return r // self.params.routers_per_chassis

    def router_slot(self, router):
        """Slot (position within chassis) of ``router``."""
        return np.asarray(router) % self.params.routers_per_chassis

    def rank1_link(self, group, chassis, i, j):
        """Directed rank-1 link id from slot ``i`` to slot ``j``."""
        C = self.params.chassis_per_group
        R = self.params.routers_per_chassis
        return self.r1_base + ((np.asarray(group) * C + chassis) * R + i) * R + j

    def rank2_link(self, group, slot, chassis_a, chassis_b):
        """Directed rank-2 bundle id from chassis ``a`` to chassis ``b``."""
        C = self.params.chassis_per_group
        R = self.params.routers_per_chassis
        return self.r2_base + ((np.asarray(group) * R + slot) * C + chassis_a) * C + chassis_b

    def rank3_link(self, group_a, group_b, cable):
        """Directed rank-3 cable id from group ``a`` to group ``b``."""
        G = self.params.n_groups
        K = self.params.cables_per_group_pair
        return self.r3_base + (np.asarray(group_a) * G + group_b) * K + cable

    def injection_link(self, node):
        """NIC injection link id of ``node``."""
        return self.inj_base + np.asarray(node)

    def ejection_link(self, node):
        """NIC ejection link id of ``node``."""
        return self.eje_base + np.asarray(node)

    def gateway_router(self, group_a, group_b, cable):
        """Global router index of the gateway in ``group_a`` for the cable."""
        gw_local = self.cable_gateway[group_a, group_b, cable]
        return np.asarray(group_a) * self.routers_per_group + gw_local

    # ------------------------------------------------------------------
    # degraded operation
    # ------------------------------------------------------------------
    @property
    def has_faults(self) -> bool:
        """Whether this topology is a fault-masked view."""
        return self.fault_scale is not None

    def with_faults(self, schedule, *, at_time: float = 0.0) -> "DragonflyTopology":
        """A capacity-masked view of this topology under ``schedule``.

        Parameters
        ----------
        schedule:
            A :class:`repro.faults.FaultSchedule` (or ``None``).  An
            empty (or ``None``) schedule returns ``self`` unchanged — a
            strict no-op, so pristine runs stay byte-identical.
        at_time:
            Engine time at which to evaluate the schedule's activity
            windows; campaign-level (static) views use t=0.

        The view shares every structural array with the original and
        replaces only ``capacity`` (scaled per link).  Applying faults
        to an already-masked view composes the multipliers.
        """
        if schedule is None or not schedule:
            return self
        scale = schedule.capacity_scale(self, at_time=at_time)
        if scale is None:
            return self
        view = copy.copy(self)
        view.capacity = self.capacity * scale
        view.fault_scale = scale if self.fault_scale is None else self.fault_scale * scale
        view.base_capacity = self.base_capacity
        return view

    # ------------------------------------------------------------------
    # summary / sanity
    # ------------------------------------------------------------------
    @property
    def bisection_bw_per_group_pair(self) -> float:
        """Per-direction optical bandwidth of one group-pair bundle."""
        p = self.params
        return p.cables_per_group_pair * p.lanes_per_cable * p.rank3_bw_bidir / 2.0

    @property
    def injection_bw_per_group(self) -> float:
        """Aggregate per-direction NIC bandwidth of one (full) group."""
        p = self.params
        return self.routers_per_group * p.nodes_per_router * p.nic_bw_bidir / 2.0

    @property
    def bisection_to_injection_ratio(self) -> float:
        """Optical egress of a group / its injection bandwidth.

        The paper notes Cori's reduced ratio (4 vs 12 cables per group
        pair); this property exposes that contrast directly.
        """
        egress = self.bisection_bw_per_group_pair * (self.n_groups - 1)
        return egress / self.injection_bw_per_group

    def describe(self) -> str:
        """Human-readable one-paragraph summary of the system."""
        p = self.params
        return (
            f"{p.name}: {self.n_groups} groups x {self.routers_per_group} routers "
            f"({p.chassis_per_group} chassis x {p.routers_per_chassis}), "
            f"{self.n_nodes} compute nodes, "
            f"{p.cables_per_group_pair} cables/group-pair x {p.lanes_per_cable} lanes, "
            f"bisection:injection = {self.bisection_to_injection_ratio:.2f}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DragonflyTopology({self.describe()})"
