"""Diagnostics bundles: everything needed to replay a failed run.

When a guarded run trips a budget or an invariant, the campaign harness
writes one JSON bundle into the policy's ``bundle_dir`` containing the
campaign config fingerprint, the run's RNG derivation key, the trailing
trace events (captured by a :class:`RingTraceWriter`), the guard's
recorded violations, and a snapshot of the run's metrics.  Bundle
writing is best-effort by design — a full disk must not turn a recorded
failure into a crashed campaign — so :func:`write_bundle` returns
``None`` instead of raising on I/O errors.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from pathlib import Path

from repro.telemetry.trace import TraceWriter

#: bundle schema version, bumped on incompatible layout changes
BUNDLE_VERSION = 1


class RingTraceWriter(TraceWriter):
    """Trace sink that keeps only the last ``maxlen`` events.

    Attached alongside a run's real sinks so that a diagnostics bundle
    can include recent engine activity without the campaign having to
    persist full traces for every run that might fail.
    """

    def __init__(self, maxlen: int = 64) -> None:
        super().__init__()
        self.events: deque[dict] = deque(maxlen=maxlen)

    def write_event(self, record: dict) -> None:
        self.events.append(record)

    def tail(self) -> list[dict]:
        return list(self.events)


def _slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "run"


def write_bundle(
    bundle_dir: str | Path,
    *,
    label: str,
    reason: dict,
    fingerprint: dict | str = "",
    rng_key: dict | None = None,
    policy: dict | None = None,
    events: list[dict] | None = None,
    violations: list[dict] | None = None,
    counters: dict | None = None,
) -> Path | None:
    """Atomically write one diagnostics bundle; returns its path.

    The write goes through a temp file and ``os.replace`` so a crash
    mid-write never leaves a torn bundle.  Any ``OSError`` (unwritable
    directory, disk full) is swallowed and reported as ``None`` — the
    run's error record is the source of truth, the bundle is extra.
    """
    try:
        dir_path = Path(bundle_dir)
        dir_path.mkdir(parents=True, exist_ok=True)
        path = dir_path / f"{_slug(label)}.bundle.json"
        payload = {
            "bundle_version": BUNDLE_VERSION,
            "label": label,
            "reason": reason,
            "fingerprint": fingerprint,
            "rng_key": rng_key or {},
            "policy": policy or {},
            "violations": violations or [],
            "events": events or [],
            "counters": counters or {},
        }
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w") as fh:
            json.dump(payload, fh, indent=1, default=str)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path
    except OSError:
        return None


def load_bundle(path: str | Path) -> dict:
    """Read a bundle back (raises on missing/corrupt files — bundles are
    read by humans and tests, not by the hot path)."""
    with Path(path).open() as fh:
        payload = json.load(fh)
    if payload.get("bundle_version") != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported bundle version {payload.get('bundle_version')!r} in {path}"
        )
    return payload
