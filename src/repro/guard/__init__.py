"""Run guardrails: budgets, watchdog, invariant monitors, diagnostics.

The guard layer is the production-fleet shape of defensive machinery the
ROADMAP's north star needs, applied to simulation campaigns:

* **Budgets & cancellation** — :class:`GuardPolicy` declares per-run
  wall-clock deadlines and iteration/step budgets; the engines enforce
  them cooperatively and raise :class:`RunTimeoutError`, which campaigns
  convert into error-status records.
* **Worker watchdog** — :class:`Watchdog` / :class:`WorkerHeartbeat`
  detect *hung* (not just dead) pool workers and kill them into the
  dispatcher's existing bounded-retry machinery.
* **Invariant monitors** — :mod:`repro.guard.invariants` checks the
  engines' conservation laws under a warn/record/raise policy
  (``REPRO_GUARD=strict`` turns every check into a hard error).
* **Diagnostics bundles** — :mod:`repro.guard.bundle` captures enough
  state (config fingerprint, RNG key, trailing events) to replay a
  failing run.
* **Self-checks** — :mod:`repro.guard.doctor` backs the ``repro
  doctor`` CLI subcommand.

The default :data:`NO_GUARD` policy is a strict no-op: engines skip
every guard branch and results are byte-identical to an unguarded
build.  See ``docs/GUARDRAILS.md``.
"""

from repro.guard.bundle import RingTraceWriter, load_bundle, write_bundle
from repro.guard.context import (
    RunGuard,
    active_guard,
    current_guard,
    set_current_guard,
    set_worker_heartbeat,
    use_guard,
)
from repro.guard.errors import GuardWarning, InvariantViolation, RunTimeoutError
from repro.guard.policy import GUARD_ENV, INVARIANT_MODES, NO_GUARD, GuardPolicy
from repro.guard.watchdog import Watchdog, WorkerHeartbeat

__all__ = [
    "GUARD_ENV",
    "INVARIANT_MODES",
    "NO_GUARD",
    "GuardPolicy",
    "GuardWarning",
    "InvariantViolation",
    "RingTraceWriter",
    "RunGuard",
    "RunTimeoutError",
    "Watchdog",
    "WorkerHeartbeat",
    "active_guard",
    "current_guard",
    "load_bundle",
    "set_current_guard",
    "set_worker_heartbeat",
    "use_guard",
    "write_bundle",
]
