"""Guard policies: what a run is allowed to cost and how strictly it is
checked.

A :class:`GuardPolicy` is declarative and frozen; the per-run mutable
state lives in :class:`repro.guard.context.RunGuard`.  The default
(:data:`NO_GUARD`) is **inactive**: engines see no guard at all, so an
unguarded run is byte-identical to a build without the guard subsystem
— the same strict no-op contract the fault and telemetry layers obey.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: invariant-check dispositions, least to most intrusive
INVARIANT_MODES = ("off", "warn", "record", "raise")

#: environment variable consulted when no explicit policy is given;
#: ``REPRO_GUARD=strict`` is the CI leg that turns every invariant
#: check into a hard error
GUARD_ENV = "REPRO_GUARD"


@dataclass(frozen=True)
class GuardPolicy:
    """Budgets, watchdog, and invariant disposition for one run.

    Attributes
    ----------
    deadline:
        Per-run wall-clock budget in seconds, enforced cooperatively at
        every fluid iteration and packet step (CLI ``--deadline``).
    step_budget:
        Packet-simulator steps allowed per run (CLI ``--step-budget``).
    iteration_budget:
        Total fluid-solver iterations allowed per run, summed over all
        of the run's phase solves.
    invariants:
        ``"off"`` (no checks), ``"warn"`` (``GuardWarning``),
        ``"record"`` (``guard.violation`` events only), or ``"raise"``
        (:class:`~repro.guard.InvariantViolation`).
    hang_timeout:
        Parent-side worker watchdog: a pool worker whose heartbeat goes
        stale for this many seconds while it owns a task is killed and
        the task retried under the dispatcher's bounded-retry rules.
    bundle_dir:
        Directory for diagnostics bundles written when a guarded run
        fails (timeout or invariant violation); ``None`` disables them.
    bundle_events:
        How many trailing trace events a bundle captures.
    """

    deadline: float | None = None
    step_budget: int | None = None
    iteration_budget: int | None = None
    invariants: str = "off"
    hang_timeout: float | None = None
    bundle_dir: str | None = None
    bundle_events: int = 64

    def __post_init__(self) -> None:
        if self.invariants not in INVARIANT_MODES:
            raise ValueError(
                f"invariants must be one of {INVARIANT_MODES}, got {self.invariants!r}"
            )
        for name in ("deadline", "hang_timeout"):
            v = getattr(self, name)
            if v is not None and not v > 0:
                raise ValueError(f"{name} must be > 0, got {v!r}")
        for name in ("step_budget", "iteration_budget"):
            v = getattr(self, name)
            if v is not None and not v >= 1:
                raise ValueError(f"{name} must be >= 1, got {v!r}")
        if self.bundle_events < 1:
            raise ValueError(f"bundle_events must be >= 1, got {self.bundle_events!r}")

    @property
    def active(self) -> bool:
        """Whether this policy changes anything at all."""
        return (
            self.deadline is not None
            or self.step_budget is not None
            or self.iteration_budget is not None
            or self.invariants != "off"
            or self.hang_timeout is not None
            or self.bundle_dir is not None
        )

    def __bool__(self) -> bool:
        return self.active

    @property
    def check_invariants(self) -> bool:
        return self.invariants != "off"

    @classmethod
    def from_env(cls, environ=os.environ) -> "GuardPolicy":
        """The ambient policy from ``$REPRO_GUARD``.

        ``strict`` maps to ``invariants="raise"``; ``warn`` / ``record``
        map to themselves; empty or ``off`` yields the inactive
        :data:`NO_GUARD`.  Unknown values raise so a typo in a CI leg
        fails loudly instead of silently disabling checks.
        """
        raw = environ.get(GUARD_ENV, "").strip().lower()
        if raw in ("", "off", "0", "none"):
            return NO_GUARD
        if raw == "strict":
            return cls(invariants="raise")
        if raw in ("warn", "record", "raise"):
            return cls(invariants=raw)
        raise ValueError(
            f"unknown {GUARD_ENV} value {raw!r} (expected strict|warn|record|off)"
        )


#: the canonical inactive policy — a strict no-op everywhere
NO_GUARD = GuardPolicy()
