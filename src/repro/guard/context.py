"""The per-run guard state and its ambient installation.

Mirrors :mod:`repro.telemetry.context`: the campaign harness creates a
:class:`RunGuard` per run and installs it with :func:`use_guard`; the
engines poll :func:`active_guard` once per solve / run and tick it
cooperatively from their inner loops.  With no guard installed and no
``$REPRO_GUARD`` environment override, :func:`active_guard` returns
``None`` and the engines skip every guard branch — the inactive path
costs one function call per engine invocation.

Worker processes additionally register a heartbeat sink here
(:func:`set_worker_heartbeat`): every guard tick feeds it, so the
parent-side watchdog can tell a *hung* worker (ticks stopped) from a
merely busy one.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager

from repro.guard.errors import GuardWarning, InvariantViolation, RunTimeoutError
from repro.guard.policy import GUARD_ENV, GuardPolicy

import os


class RunGuard:
    """Mutable budget/invariant enforcement state for one run.

    Parameters
    ----------
    policy:
        The frozen :class:`~repro.guard.GuardPolicy` to enforce.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` for ``guard.*``
        events; ``None`` emits nothing.
    label:
        Run identity used in events and bundle names
        (``"milc-AD0-s3"``).
    clock:
        Injectable monotonic clock (tests pin deadlines without
        sleeping).
    """

    __slots__ = (
        "policy",
        "label",
        "telemetry",
        "steps",
        "iterations",
        "violations",
        "_clock",
        "_deadline_at",
    )

    def __init__(
        self,
        policy: GuardPolicy,
        *,
        telemetry=None,
        label: str = "",
        clock=time.monotonic,
    ) -> None:
        self.policy = policy
        self.label = label
        self.telemetry = telemetry
        self.steps = 0
        self.iterations = 0
        #: invariant findings recorded so far (dicts; see ``violation``)
        self.violations: list[dict] = []
        self._clock = clock
        self._deadline_at = (
            clock() + policy.deadline if policy.deadline is not None else None
        )

    # ---- budgets -----------------------------------------------------
    @property
    def check_invariants(self) -> bool:
        return self.policy.check_invariants

    def _event(self, name: str, **fields) -> None:
        tel = self.telemetry
        if tel is not None:
            tel.event(name, label=self.label, **fields)

    def _timeout(self, kind: str, limit: float, spent: float, where: str) -> None:
        self._event(
            "guard.timeout",
            kind=kind,
            limit=limit,
            spent=spent,
            where=where,
            steps=self.steps,
            iterations=self.iterations,
        )
        raise RunTimeoutError(kind, limit, spent, where)

    def check_deadline(self, where: str = "") -> None:
        """Raise :class:`RunTimeoutError` once the wall-clock budget is gone."""
        if self._deadline_at is None:
            return
        now = self._clock()
        if now > self._deadline_at:
            spent = self.policy.deadline + (now - self._deadline_at)
            self._timeout("deadline", self.policy.deadline, spent, where)

    def tick_steps(self, n: int = 1, where: str = "packet.run") -> None:
        """Account ``n`` packet-simulator steps against the budgets."""
        beat()
        self.steps += n
        budget = self.policy.step_budget
        if budget is not None and self.steps > budget:
            self._timeout("step_budget", budget, self.steps, where)
        self.check_deadline(where)

    def tick_iterations(self, n: int = 1, where: str = "fluid.solve") -> None:
        """Account ``n`` fluid-solver iterations against the budgets."""
        beat()
        self.iterations += n
        budget = self.policy.iteration_budget
        if budget is not None and self.iterations > budget:
            self._timeout("iteration_budget", budget, self.iterations, where)
        self.check_deadline(where)

    # ---- invariants --------------------------------------------------
    def violation(self, name: str, detail: str = "", **context) -> None:
        """Report one invariant violation under the policy's disposition.

        Always emits a ``guard.violation`` trace event and appends to
        :attr:`violations`; additionally warns (``"warn"``) or raises
        (``"raise"``).  Never called on the ``"off"`` policy — callers
        gate their checks on :attr:`check_invariants`.
        """
        mode = self.policy.invariants
        finding = {"invariant": name, "detail": detail, **context}
        self.violations.append(finding)
        self._event("guard.violation", mode=mode, **finding)
        tel = self.telemetry
        if tel is not None and tel.metrics.enabled:
            tel.metrics.counter(
                "guard_violations_total", "invariant violations observed"
            ).inc()
        if mode == "warn":
            warnings.warn(
                f"invariant {name} violated: {detail}", GuardWarning, stacklevel=3
            )
        elif mode == "raise":
            raise InvariantViolation(name, detail, **context)


# ---- ambient installation -------------------------------------------

_current: RunGuard | None = None

#: cache for the environment-derived fallback guard, keyed by the raw
#: ``$REPRO_GUARD`` value so tests can flip it with monkeypatch.setenv
_env_cache: tuple[str, RunGuard | None] | None = None


def current_guard() -> RunGuard | None:
    """The explicitly installed guard, or ``None``."""
    return _current


def set_current_guard(guard: RunGuard | None) -> RunGuard | None:
    """Install ``guard`` as ambient; returns the previous one."""
    global _current
    old = _current
    _current = guard
    return old


@contextmanager
def use_guard(guard: RunGuard | None):
    """Scope ``guard`` as the ambient run guard for a ``with`` block.

    ``use_guard(None)`` is a true no-op scope (it does not mask an
    outer guard), so callers can write ``with use_guard(maybe_guard)``
    unconditionally.
    """
    if guard is None:
        yield None
        return
    old = set_current_guard(guard)
    try:
        yield guard
    finally:
        set_current_guard(old)


def _env_guard() -> RunGuard | None:
    """A shared guard built from ``$REPRO_GUARD`` (``None`` when unset).

    Lets the ``REPRO_GUARD=strict`` CI leg enforce invariants in every
    engine call, even ones not wrapped by a campaign.  The shared guard
    carries no budgets, only the invariant disposition.
    """
    global _env_cache
    raw = os.environ.get(GUARD_ENV, "")
    if _env_cache is not None and _env_cache[0] == raw:
        return _env_cache[1]
    policy = GuardPolicy.from_env()
    guard = RunGuard(policy, label="env") if policy.active else None
    _env_cache = (raw, guard)
    return guard


def active_guard() -> RunGuard | None:
    """What an engine should enforce: the ambient guard, else the env one."""
    return _current if _current is not None else _env_guard()


# ---- worker heartbeat hook ------------------------------------------

_heartbeat = None


def set_worker_heartbeat(heartbeat) -> None:
    """Register this process's heartbeat sink (pool workers only).

    ``heartbeat`` needs one method, ``beat()``; ``None`` unregisters.
    """
    global _heartbeat
    _heartbeat = heartbeat


def beat() -> None:
    """Feed the worker watchdog, if one is attached to this process."""
    hb = _heartbeat
    if hb is not None:
        hb.beat()
