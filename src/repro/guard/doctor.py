"""The ``repro doctor`` self-check layer.

Validates a proposed campaign's moving parts *before* hours of compute
are committed to it: the environment (python/numpy/fork capability),
the topology parameters, the fault schedule (including a partition
probe against the degraded fabric), the checkpoint destination, and —
unless skipped — a small self-test matrix that runs both engines under
strict invariants and re-verifies determinism.

Exit-code contract (enforced by :func:`exit_code`):

* ``0`` — every check passed;
* ``2`` — a configuration error (bad topology dims, malformed or
  partitioned fault schedule, unwritable checkpoint destination) —
  matching the CLI's config-error convention;
* ``1`` — configuration is fine but a self-test failed (an environment
  or installation problem).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import platform
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: findings that indicate a *configuration* error (exit 2)
CONFIG_CHECKS = ("topology", "faults", "checkpoint", "queue", "chaos")

#: refuse a queue directory with less free space than this
QUEUE_MIN_FREE_BYTES = 64 * 1024 * 1024

#: mtime-vs-wall-clock disagreement above this is a cross-host skew risk
QUEUE_CLOCK_SKEW_S = 2.0


@dataclass
class Finding:
    """One doctor observation."""

    check: str  # "environment" | "topology" | "faults" | "checkpoint" | "selftest"
    status: str  # "ok" | "fail"
    detail: str

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def format(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        return f"[{mark}] {self.check}: {self.detail}"


def check_environment() -> list[Finding]:
    """Interpreter, numpy, and fork-capability findings (informational)."""
    out = [
        Finding(
            "environment",
            "ok",
            f"python {platform.python_version()} on {platform.system()}",
        ),
        Finding("environment", "ok", f"numpy {np.__version__}"),
        Finding("environment", "ok", f"{os.cpu_count() or 1} cpu cores"),
    ]
    methods = mp.get_all_start_methods()
    if "fork" in methods:
        out.append(Finding("environment", "ok", "fork start method available"))
    else:
        # not an error: campaigns still run serially
        out.append(
            Finding(
                "environment",
                "ok",
                f"fork start method unavailable (have {methods}); "
                "parallel campaigns (-j) will not work on this host",
            )
        )
    return out


def check_topology(system: str | None, dims: str | None, *, seed: int = 0):
    """Build the requested topology; returns ``(finding, top_or_None)``.

    ``dims`` is ``"G,C,R,N"`` (groups, chassis/group, routers/chassis,
    nodes/router) and overrides ``system``.
    """
    from repro.topology.dragonfly import DragonflyParams, DragonflyTopology
    from repro.topology.systems import cori, mini, slingshot, theta, toy

    systems = {"theta": theta, "cori": cori, "slingshot": slingshot, "mini": mini, "toy": toy}
    try:
        if dims:
            parts = [p.strip() for p in dims.split(",")]
            if len(parts) != 4:
                raise ValueError(f"--dims takes G,C,R,N (got {dims!r})")
            g, c, r, n = (int(p) for p in parts)
            top = DragonflyTopology(
                DragonflyParams(
                    name=f"custom{g}",
                    n_groups=g,
                    chassis_per_group=c,
                    routers_per_chassis=r,
                    nodes_per_router=n,
                ),
                seed=seed,
            )
        else:
            name = system or "theta"
            if name not in systems:
                raise ValueError(
                    f"unknown system {name!r}; choose from {sorted(systems)}"
                )
            top = systems[name]()
    except ValueError as exc:
        return Finding("topology", "fail", str(exc)), None
    return (
        Finding(
            "topology",
            "ok",
            f"{top.params.name}: {top.n_groups} groups, {top.n_routers} routers, "
            f"{top.n_nodes} nodes, {top.n_links} links",
        ),
        top,
    )


def check_faults(spec: str | None, top, *, seed: int = 0) -> list[Finding]:
    """Parse a ``--faults`` spec and probe the degraded fabric for partitions.

    The probe routes one representative flow out of every group (plus
    one intra-group flow) on the faulted topology, and checks every
    node's NIC links are alive — the cheap version of the full
    partition test the campaign itself would hit at run time.
    """
    from repro.faults import FaultSchedule, NetworkPartitionedError
    from repro.topology.paths import minimal_paths
    from repro.util import derive_rng

    if not spec:
        return [Finding("faults", "ok", "no fault schedule")]
    try:
        schedule = FaultSchedule.parse(spec, seed=seed)
    except ValueError as exc:
        return [Finding("faults", "fail", f"unparsable fault spec: {exc}")]
    findings = [Finding("faults", "ok", f"parsed: {schedule.describe()}")]
    if top is None:
        return findings
    faulted = top.with_faults(schedule)
    dead_nodes = np.flatnonzero(
        (faulted.capacity[top.injection_link(np.arange(top.n_nodes))] <= 0)
        | (faulted.capacity[top.ejection_link(np.arange(top.n_nodes))] <= 0)
    )
    if dead_nodes.size:
        findings.append(
            Finding(
                "faults",
                "fail",
                f"schedule partitions the network: {dead_nodes.size} node(s) "
                f"sit on dead routers/NICs (first: node {int(dead_nodes[0])}); "
                "any run placed there will fail with NetworkPartitionedError",
            )
        )
        return findings
    # route a probe flow from each group to the next (and one local pair)
    rpg, npr = top.routers_per_group, top.params.nodes_per_router
    nodes_per_group = rpg * npr
    src, dst = [], []
    for g in range(top.n_groups):
        src.append(g * nodes_per_group)
        dst.append(((g + 1) % top.n_groups) * nodes_per_group)
    src.append(0)
    dst.append(npr)  # same group, next router
    try:
        minimal_paths(
            faulted,
            np.asarray(src),
            np.asarray(dst),
            k=2,
            rng=derive_rng(seed, "doctor", "probe"),
        )
    except NetworkPartitionedError as exc:
        findings.append(
            Finding("faults", "fail", f"schedule partitions the network: {exc}")
        )
        return findings
    findings.append(
        Finding("faults", "ok", f"partition probe routed {len(src)} flows")
    )
    return findings


def check_checkpoint(path: str | None) -> Finding:
    """Can the checkpoint file actually be created/appended where asked?"""
    if not path:
        return Finding("checkpoint", "ok", "no checkpoint requested")
    target = Path(path)
    parent = target.parent if target.parent != Path("") else Path(".")
    if not parent.is_dir():
        return Finding(
            "checkpoint",
            "fail",
            f"checkpoint directory {parent} does not exist (or is not a "
            "directory); create it before launching the campaign",
        )
    try:
        with tempfile.NamedTemporaryFile(dir=parent, prefix=".repro-doctor-"):
            pass
    except OSError as exc:
        return Finding(
            "checkpoint",
            "fail",
            f"checkpoint directory {parent} is not writable: {exc}",
        )
    return Finding("checkpoint", "ok", f"checkpoint destination {parent} is writable")


def check_queue(queue_dir: str | None) -> list[Finding]:
    """Preflight a ``--queue`` directory for distributed campaigns.

    The shared-directory protocol (docs/DISTRIBUTED.md) needs exactly
    three filesystem guarantees — O_EXCL exclusivity, atomic rename,
    and durable writes — plus enough free space and roughly-agreeing
    clocks across hosts.  Each is probed directly against the actual
    directory, since NFS exports differ in precisely these behaviours.
    """
    import json
    import shutil
    import time
    import uuid

    if not queue_dir:
        return []  # nothing requested: keep non-distributed output unchanged
    root = Path(queue_dir)
    findings: list[Finding] = []
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        return [Finding("queue", "fail", f"cannot create queue dir {root}: {exc}")]
    token = uuid.uuid4().hex[:8]

    # O_EXCL: exactly one creator may win a lease file
    probe = root / f".doctor-excl-{token}"
    try:
        fd = os.open(probe, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        try:
            os.open(probe, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            findings.append(
                Finding(
                    "queue",
                    "fail",
                    "O_EXCL is not exclusive here: a second O_CREAT|O_EXCL open "
                    "of an existing file succeeded — lease claims would race",
                )
            )
        except FileExistsError:
            findings.append(Finding("queue", "ok", "O_EXCL lease semantics hold"))
    except OSError as exc:
        findings.append(Finding("queue", "fail", f"O_EXCL probe failed: {exc}"))
    finally:
        try:
            os.unlink(probe)
        except OSError:
            pass

    # atomic rename: write-then-replace must yield the complete new content
    src = root / f".doctor-ren-src-{token}"
    dst = root / f".doctor-ren-dst-{token}"
    try:
        dst.write_text("old\n")
        src.write_text(json.dumps({"probe": token}) + "\n")
        os.replace(src, dst)
        if json.loads(dst.read_text())["probe"] != token:
            raise OSError("rename produced stale content")
        findings.append(Finding("queue", "ok", "atomic rename (os.replace) works"))
    except (OSError, ValueError, KeyError) as exc:
        findings.append(Finding("queue", "fail", f"atomic-rename probe failed: {exc}"))
    finally:
        for p in (src, dst):
            try:
                os.unlink(p)
            except OSError:
                pass

    # free space: results + manifest + bundles need headroom
    try:
        free = shutil.disk_usage(root).free
        if free < QUEUE_MIN_FREE_BYTES:
            findings.append(
                Finding(
                    "queue",
                    "fail",
                    f"only {free / 1e6:.0f} MB free on the queue filesystem "
                    f"(need at least {QUEUE_MIN_FREE_BYTES / 1e6:.0f} MB)",
                )
            )
        else:
            findings.append(
                Finding("queue", "ok", f"{free / 1e9:.1f} GB free on the queue filesystem")
            )
    except OSError as exc:
        findings.append(Finding("queue", "fail", f"disk-usage probe failed: {exc}"))

    # clock skew: lease expiry is wall-clock, so the filesystem's idea of
    # time (mtime, often stamped by an NFS server) must agree with ours
    stamp = root / f".doctor-clock-{token}"
    try:
        before = time.time()
        stamp.write_text("t\n")
        skew = abs(os.stat(stamp).st_mtime - before)
        if skew > QUEUE_CLOCK_SKEW_S:
            findings.append(
                Finding(
                    "queue",
                    "fail",
                    f"filesystem mtime disagrees with local wall clock by "
                    f"{skew:.1f}s — cross-host lease expiry would misfire; "
                    "sync clocks (NTP) or raise the lease TTL well above the skew",
                )
            )
        else:
            findings.append(
                Finding("queue", "ok", f"clock skew vs filesystem {skew:.2f}s")
            )
    except OSError as exc:
        findings.append(Finding("queue", "fail", f"clock-skew probe failed: {exc}"))
    finally:
        try:
            os.unlink(stamp)
        except OSError:
            pass

    # stale leases: crash debris from a previous campaign on this directory
    leases = root / "leases"
    if leases.is_dir():
        now = time.time()
        stale = live = 0
        for name in os.listdir(leases):
            if not name.endswith(".lease"):
                continue
            try:
                d = json.loads((leases / name).read_text())
                if float(d.get("expires_at", 0.0)) <= now:
                    stale += 1
                else:
                    live += 1
            except (OSError, ValueError):
                stale += 1
        findings.append(
            Finding(
                "queue",
                "ok",
                f"existing queue: {live} live lease(s), {stale} stale "
                + ("(workers will reclaim them)" if stale else ""),
            )
        )
    return findings


def run_selftests() -> list[Finding]:
    """A small engine matrix under strict invariants, plus determinism.

    Everything here must pass on a healthy installation; a failure means
    the environment (numpy build, float behaviour) is producing results
    the campaign layer cannot trust.
    """
    import warnings

    from repro.core.biases import AD0, AD3
    from repro.guard.context import RunGuard, use_guard
    from repro.guard.policy import GuardPolicy
    from repro.network.fluid import FlowSet, NonConvergenceWarning, solve_fluid
    from repro.network.packet_sim import InjectionSpec, PacketSimulator
    from repro.topology.systems import toy
    from repro.util import derive_rng

    findings: list[Finding] = []
    top = toy()
    strict = GuardPolicy(invariants="raise")
    n = top.n_nodes
    flows = FlowSet(
        src=np.arange(0, n // 2),
        dst=np.arange(n // 2, n),
        nbytes=np.full(n // 2, 1.5e6),
        cls=np.zeros(n // 2, dtype=np.int64),
    )
    with warnings.catch_warnings():
        # the probe workload is deliberately tiny and may sit
        # off-equilibrium; non-convergence is not an installation fault
        warnings.simplefilter("ignore", NonConvergenceWarning)
        for mode in (AD0, AD3):
            try:
                with use_guard(RunGuard(strict, label=f"doctor-fluid-{mode.name}")):
                    res = solve_fluid(
                        top, flows, [mode], rng=derive_rng(0, "doctor", mode.name)
                    )
                if not np.isfinite(res.flow_time).all():
                    raise RuntimeError("non-finite flow times")
                findings.append(
                    Finding(
                        "selftest",
                        "ok",
                        f"fluid {mode.name}: {flows.n} flows, strict invariants clean",
                    )
                )
            except Exception as exc:  # noqa: BLE001 - any failure is the finding
                findings.append(
                    Finding("selftest", "fail", f"fluid {mode.name}: {exc}")
                )
        # determinism: the same derived stream must reproduce identical bytes
        try:
            a = solve_fluid(top, flows, [AD0], rng=derive_rng(0, "doctor", "det"))
            b = solve_fluid(top, flows, [AD0], rng=derive_rng(0, "doctor", "det"))
            same = (
                np.array_equal(a.flow_time, b.flow_time)
                and np.array_equal(a.link_load, b.link_load)
                and np.array_equal(a.min_fraction, b.min_fraction)
            )
            if not same:
                raise RuntimeError("two identical solves produced different results")
            findings.append(
                Finding("selftest", "ok", "fluid determinism: byte-identical")
            )
        except Exception as exc:  # noqa: BLE001
            findings.append(Finding("selftest", "fail", f"fluid determinism: {exc}"))
        try:
            with use_guard(RunGuard(strict, label="doctor-packet")):
                sim = PacketSimulator(top, rng=derive_rng(0, "doctor", "pkt"))
                sim.add_message(
                    InjectionSpec(src=0, dst=n - 1, nbytes=64 * 1024, mode=AD3)
                )
                sim.run()
            if not sim.messages[0].delivered:
                raise RuntimeError("message not delivered")
            findings.append(
                Finding(
                    "selftest",
                    "ok",
                    f"packet sim: drained in {sim.step} steps, strict invariants clean",
                )
            )
        except Exception as exc:  # noqa: BLE001
            findings.append(Finding("selftest", "fail", f"packet sim: {exc}"))
    return findings


def check_chaos() -> list[Finding]:
    """Refuse to bless a campaign while a failure schedule is active.

    ``$REPRO_CHAOS`` is meant for soak children and chaos tests; a
    production campaign launched with it still set would be silently
    perturbed (injected ENOSPC, crashes, latency) — that is a
    configuration error, not a warning.  A malformed spec is reported
    too, so a typo fails here instead of at campaign startup.
    """
    from repro.chaos import ChaosSchedule, SITES
    from repro.chaos.failpoints import ENV_SPEC

    spec = os.environ.get(ENV_SPEC, "").strip()
    if not spec:
        return []
    try:
        schedule = ChaosSchedule.parse(spec)
        for rule in schedule.rules:
            rule.check_registered(SITES)
    except ValueError as exc:
        return [Finding("chaos", "fail", f"${ENV_SPEC} is malformed: {exc}")]
    return [
        Finding(
            "chaos",
            "fail",
            f"${ENV_SPEC} is set ({schedule.describe()}) — a failure "
            "schedule would perturb this campaign; unset it for "
            "production runs",
        )
    ]


def run_doctor(
    *,
    system: str | None = None,
    dims: str | None = None,
    faults: str | None = None,
    checkpoint: str | None = None,
    queue: str | None = None,
    selftest: bool = True,
    seed: int = 0,
) -> list[Finding]:
    """Run every doctor check; returns the findings in print order."""
    findings = check_environment()
    topo_finding, top = check_topology(system, dims, seed=seed)
    findings.append(topo_finding)
    findings.extend(check_faults(faults, top, seed=seed))
    findings.append(check_checkpoint(checkpoint))
    findings.extend(check_queue(queue))
    findings.extend(check_chaos())
    if selftest:
        findings.extend(run_selftests())
    return findings


def exit_code(findings: list[Finding]) -> int:
    """0 all-ok; 2 on configuration errors; 1 on self-test failures."""
    if any(not f.ok and f.check in CONFIG_CHECKS for f in findings):
        return 2
    if any(not f.ok for f in findings):
        return 1
    return 0
