"""Engine conservation-law checks.

Each function inspects one engine's state and reports anything broken
through :meth:`RunGuard.violation`, which applies the policy's
warn/record/raise disposition.  All checks are written to hold on every
healthy workload — the ``REPRO_GUARD=strict`` CI leg runs the whole
tier-1 suite with ``invariants="raise"`` — so a finding always means a
real bug (or a deliberately sabotaged test fixture).

The full invariant table lives in ``docs/GUARDRAILS.md``.
"""

from __future__ import annotations

import numpy as np


def check_fluid_iterate(guard, it: int, x: np.ndarray, load: np.ndarray) -> None:
    """Per-iteration solver checks: finite split fractions in [0, 1],
    finite non-negative link loads."""
    if not np.isfinite(x).all():
        bad = int(np.flatnonzero(~np.isfinite(x))[0])
        guard.violation(
            "fluid.finite_split",
            f"split fraction is not finite for flow {bad} at iteration {it}",
            iteration=it,
            flow=bad,
        )
        return
    if x.size and (float(x.min()) < 0.0 or float(x.max()) > 1.0):
        guard.violation(
            "fluid.split_range",
            f"split fraction outside [0, 1] at iteration {it}: "
            f"min {float(x.min()):.4g}, max {float(x.max()):.4g}",
            iteration=it,
            min=float(x.min()),
            max=float(x.max()),
        )
    if not np.isfinite(load).all():
        guard.violation(
            "fluid.finite_load",
            f"link load is not finite at iteration {it}",
            iteration=it,
        )
    elif load.size and float(load.min()) < 0.0:
        guard.violation(
            "fluid.nonnegative_load",
            f"negative link load at iteration {it}: {float(load.min()):.4g}",
            iteration=it,
            min=float(load.min()),
        )


def check_fluid_result(guard, top, load, flits, stalls, flow_time) -> None:
    """Post-solve checks: finite counters, no load on zero-capacity links
    (disconnected slots and faulted-dead links), non-negative everything."""
    for name, arr in (
        ("load", load),
        ("flits", flits),
        ("stalls", stalls),
        ("flow_time", flow_time),
    ):
        if not np.isfinite(arr).all():
            guard.violation(
                "fluid.finite_result", f"{name} contains non-finite values", field=name
            )
            return
        if arr.size and float(arr.min()) < 0.0:
            guard.violation(
                "fluid.nonnegative_result",
                f"{name} contains negative values: min {float(arr.min()):.4g}",
                field=name,
                min=float(arr.min()),
            )
    masked = top.capacity <= 0.0
    if masked.any():
        leak = float(np.abs(load[masked]).max(initial=0.0))
        if leak > 1e-9:
            guard.violation(
                "fluid.capacity_mask",
                f"load {leak:.4g} assigned to a zero-capacity link "
                "(dead or disconnected)",
                leak=leak,
            )


def check_packet_state(guard, sim) -> None:
    """Periodic packet-simulator checks.

    * credits never go negative (the scheduler may only serve up to
      ``floor(credit)`` packets per link per step);
    * links the fault schedule has killed hold zero credit;
    * total ejection-side flits never exceed injection-side flits (every
      delivered packet was injected first — flit conservation across the
      fabric, net of drops);
    * the simulation clock is monotone.
    """
    credit = sim.credit
    if credit.size and float(credit.min()) < -1e-9:
        guard.violation(
            "packet.nonnegative_credit",
            f"link credit went negative: {float(credit.min()):.4g}",
            min=float(credit.min()),
            step=sim.step,
        )
    if sim.faults is not None:
        dead = sim.rate <= 0.0
        if dead.any():
            stray = float(np.abs(credit[dead]).max(initial=0.0))
            if stray > 1e-9:
                guard.violation(
                    "packet.dead_link_credit",
                    f"dead link holds {stray:.4g} credits",
                    credit=stray,
                    step=sim.step,
                )
    top = sim.top
    nodes = np.arange(top.n_nodes)
    inj = float(sim.flits[top.injection_link(nodes)].sum())
    eje = float(sim.flits[top.ejection_link(nodes)].sum())
    if eje > inj + 1e-6:
        guard.violation(
            "packet.flit_conservation",
            f"ejected {eje:.6g} flits but only {inj:.6g} were injected",
            injected=inj,
            ejected=eje,
            step=sim.step,
        )
    last = getattr(sim, "_guard_last_step", -1)
    if sim.step < last:
        guard.violation(
            "packet.monotone_clock",
            f"simulation step went backwards: {last} -> {sim.step}",
            previous=last,
            step=sim.step,
        )
    sim._guard_last_step = sim.step
