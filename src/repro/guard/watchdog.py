"""Parent-side worker watchdog and worker-side heartbeat files.

A dead worker already breaks the pool (``BrokenProcessPool``) and the
dispatcher's bounded-retry machinery absorbs it.  A *hung* worker — one
stuck in an engine loop or a deadlocked syscall — keeps its process
alive and stalls the whole campaign forever.  The watchdog closes that
gap:

* each pool worker owns one heartbeat file (``<pid>.hb`` in a campaign-
  scoped temp directory), created when it picks up a task, touched on
  every cooperative guard tick, and removed when the task ends;
* a monitor thread in the parent scans the directory; a heartbeat file
  older than ``hang_timeout`` whose pid still belongs to the live pool
  gets its worker ``SIGKILL``-ed.  The kill surfaces in the dispatcher
  as a broken pool, which rebuilds and retries the task under the same
  bounded-retry and serial-equivalence rules as a crash.

Restricting kills to pids reported by the pool (``pid_provider``)
guarantees the watchdog can never shoot an unrelated process even if a
stale heartbeat file survives a previous campaign.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path


class WorkerHeartbeat:
    """Worker-side half: one mtime-based heartbeat file per busy worker."""

    #: minimum seconds between mtime updates — guard ticks fire every
    #: solver iteration / packet step, touching the file that often
    #: would turn the watchdog into an I/O hotspot
    min_interval = 0.05

    def __init__(
        self,
        directory: str | Path,
        pid: int | None = None,
        name: str | None = None,
    ) -> None:
        # pool workers name the file by pid (the watchdog kills by pid);
        # distributed workers name it by owner id, which queue-status
        # reports but no watchdog ever kills
        stem = name if name is not None else str(pid if pid is not None else os.getpid())
        self.path = Path(directory) / f"{stem}.hb"
        self._last = 0.0

    def start_task(self) -> None:
        """Mark this worker busy (heartbeat file appears)."""
        try:
            self.path.touch()
        except OSError:
            return
        self._last = time.monotonic()

    def beat(self) -> None:
        """Refresh the heartbeat (throttled; safe to call very often)."""
        now = time.monotonic()
        if now - self._last < self.min_interval:
            return
        self._last = now
        try:
            os.utime(self.path)
        except OSError:
            pass

    def end_task(self) -> None:
        """Mark this worker idle (heartbeat file disappears)."""
        self.path.unlink(missing_ok=True)


class Watchdog:
    """Parent-side monitor thread that kills workers with stale heartbeats.

    Parameters
    ----------
    directory:
        The heartbeat directory shared with the workers.
    timeout:
        Seconds of heartbeat silence after which a busy worker is
        declared hung.
    pid_provider:
        Callable returning the set of pids currently belonging to the
        pool; only those are ever killed.
    on_kill:
        Optional callback ``(pid, age_seconds)`` invoked after a kill.
    poll:
        Scan interval; defaults to ``min(timeout / 4, 0.5)``.
    """

    def __init__(
        self,
        directory: str | Path,
        timeout: float,
        *,
        pid_provider,
        on_kill=None,
        poll: float | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be > 0")
        self.directory = Path(directory)
        self.timeout = timeout
        self.pid_provider = pid_provider
        self.on_kill = on_kill
        self.poll = poll if poll is not None else min(timeout / 4.0, 0.5)
        #: ``(pid, age_seconds)`` of every worker this watchdog shot
        self.kills: list[tuple[int, float]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "Watchdog":
        self._thread = threading.Thread(
            target=self._loop, name="repro-guard-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.poll):
            self.scan()

    def scan(self) -> None:
        """One sweep: kill every live pool worker whose heartbeat is stale."""
        try:
            entries = list(self.directory.glob("*.hb"))
        except OSError:
            return
        if not entries:
            return
        live = self.pid_provider()
        now = time.time()
        for hb in entries:
            try:
                pid = int(hb.stem)
            except ValueError:
                continue
            if pid not in live:
                continue
            try:
                age = now - hb.stat().st_mtime
            except OSError:  # task just finished; file gone
                continue
            if age <= self.timeout:
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                continue
            self.kills.append((pid, age))
            hb.unlink(missing_ok=True)
            if self.on_kill is not None:
                self.on_kill(pid, age)
