"""Typed guard errors (leaf module: imports nothing from the package).

Kept dependency-free so every layer — engines, campaign harness,
parallel dispatcher, CLI — can catch these without import cycles.
"""

from __future__ import annotations


class RunTimeoutError(RuntimeError):
    """A run exceeded one of its :class:`~repro.guard.GuardPolicy` budgets.

    Raised cooperatively from inside the engines (the fluid solver's
    iteration loop, the packet simulator's step loop), so the run stops
    at a clean point instead of being killed mid-array-update.  Campaigns
    convert it into an ``error``-status RunRecord; it never aborts a
    sweep.

    Attributes
    ----------
    kind:
        ``"deadline"``, ``"step_budget"``, or ``"iteration_budget"``.
    limit, spent:
        The configured budget and how much of it was consumed when the
        guard tripped (seconds for deadlines, counts otherwise).
    where:
        The engine location that observed the trip (``"fluid.solve"``,
        ``"packet.run"``).
    """

    def __init__(self, kind: str, limit: float, spent: float, where: str = "") -> None:
        self.kind = kind
        self.limit = limit
        self.spent = spent
        self.where = where
        unit = "s" if kind == "deadline" else ""
        at = f" in {where}" if where else ""
        super().__init__(
            f"run exceeded its {kind.replace('_', ' ')}{at}: "
            f"{spent:g}{unit} > {limit:g}{unit}"
        )


class InvariantViolation(RuntimeError):
    """An engine broke one of its own conservation laws.

    Only raised when the active :class:`~repro.guard.GuardPolicy` has
    ``invariants="raise"`` (the ``REPRO_GUARD=strict`` mode); the
    ``warn`` and ``record`` policies report the same finding without
    interrupting the run.

    Attributes
    ----------
    name:
        Dotted invariant name (``"fluid.finite_split"``,
        ``"packet.flit_conservation"``, ... — see
        ``docs/GUARDRAILS.md`` for the full table).
    detail:
        Human-readable description of what was observed.
    context:
        Structured fields attached to the ``guard.violation`` event.
    """

    def __init__(self, name: str, detail: str = "", **context) -> None:
        self.name = name
        self.detail = detail
        self.context = context
        msg = f"invariant {name} violated"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class GuardWarning(RuntimeWarning):
    """Warning category for ``invariants="warn"`` policy findings."""
