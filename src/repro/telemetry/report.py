"""Summarize a recorded JSONL trace (the ``repro-study report`` command).

Answers the questions an operator asks of a run after the fact: where
did the time go (slowest instrumented spans), did the fluid solver
converge everywhere (non-converged solves, residual distribution,
iterations-to-tolerance histogram), and what did the run actually do
(event counts, campaign samples per mode).
"""

from __future__ import annotations

import math
import warnings
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.trace import read_trace


@dataclass
class ConvergenceSummary:
    """Fluid-solver convergence digest of one trace."""

    n_solves: int = 0
    n_converged: int = 0
    residuals: list[float] = field(default_factory=list)
    #: iteration at which |dx| first dropped below tol; None = never
    iters_to_tol: list[int | None] = field(default_factory=list)
    worst: list[dict] = field(default_factory=list)  # non-converged events

    @property
    def n_nonconverged(self) -> int:
        return self.n_solves - self.n_converged


@dataclass
class DistSummary:
    """Distributed-queue digest of one trace (``--queue`` campaigns)."""

    workers: list[str] = field(default_factory=list)
    retries_by_run: dict[int, int] = field(default_factory=dict)
    steals_by_run: dict[int, int] = field(default_factory=dict)
    exhausted: int = 0
    outages: int = 0
    fallback: bool = False

    @property
    def active(self) -> bool:
        return bool(
            self.workers
            or self.retries_by_run
            or self.steals_by_run
            or self.exhausted
            or self.outages
            or self.fallback
        )


@dataclass
class TraceSummary:
    """Everything :func:`format_summary` needs, precomputed."""

    source: str
    n_events: int
    by_type: dict[str, int]
    convergence: ConvergenceSummary
    slowest: list[dict]  # events carrying wall_ms, slowest first
    sample_runtimes: dict[str, list[float]]  # campaign runtimes by mode
    dist: DistSummary = field(default_factory=DistSummary)


def _percentile(values: list[float], q: float) -> float:
    vals = sorted(values)
    if not vals:
        return float("nan")
    pos = q / 100.0 * (len(vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(vals) - 1)
    return vals[lo] + (vals[hi] - vals[lo]) * (pos - lo)


def order_events(events: list[dict]) -> list[dict]:
    """Canonical ordering of a possibly multi-worker trace.

    Events forwarded from pool workers carry ``run_index`` (the run's
    canonical position in the campaign) plus a worker-local ``seq``, so
    a stable sort by ``(run_index, seq)`` reconstructs the serial event
    order no matter how the workers' completions interleaved in the
    file.  Events without a ``run_index`` (parent lifecycle events such
    as ``campaign.start``) sort before every run, keeping their own
    relative order.

    Traces are external input (hand-edited, truncated, concatenated
    from several runs), so the keys are guarded rather than trusted:
    non-numeric / NaN ``run_index`` clamps to -1, bad or negative
    ``seq`` clamps to 0, and a single ``run_index`` claiming events
    from several distinct workers — the signature of two traces
    spliced together — each draw one ``RuntimeWarning``.
    """

    def _num(value, default, lo):
        # bool is an int subclass but True/1.0 as a run index is a
        # corrupt trace, not a coordinate
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return default, True
        if isinstance(value, float) and not math.isfinite(value):
            return default, True
        if value < lo:
            return default, True
        return value, False

    keys: list[tuple] = []
    bad = 0
    run_workers: dict = {}
    for e in events:
        run_index, clamped_r = _num(e.get("run_index", -1), -1, -1)
        seq, clamped_s = _num(e.get("seq", 0), 0, 0)
        bad += clamped_r + clamped_s
        if "worker" in e and not clamped_r and run_index >= 0:
            run_workers.setdefault(run_index, set()).add(e["worker"])
        keys.append((run_index, seq))
    if bad:
        warnings.warn(
            f"{bad} event ordering key(s) out of range or non-numeric; "
            "clamped to the pre-run position",
            RuntimeWarning,
            stacklevel=2,
        )
    for run_index, workers in sorted(run_workers.items()):
        if len(workers) > 1:
            warnings.warn(
                f"run_index {run_index} carries events from {len(workers)} "
                "distinct workers; the trace may be spliced from several "
                "runs and its per-run ordering is unreliable",
                RuntimeWarning,
                stacklevel=2,
            )
    # sort positions, not dicts: equal keys must never compare events
    order = sorted(range(len(events)), key=keys.__getitem__)
    return [events[i] for i in order]


def summarize_trace(
    source: str | Path | list[dict], *, top: int = 10
) -> TraceSummary:
    """Digest a trace file (or already-parsed event list).

    The events are put in canonical order first (see
    :func:`order_events`), so a trace written by a multi-worker campaign
    summarizes identically to its serial twin.
    """
    if isinstance(source, (str, Path)):
        events = read_trace(source)
        label = str(source)
    else:
        events = source
        label = "<memory>"
    events = order_events(events)

    by_type = TallyCounter(e.get("ev", "?") for e in events)

    conv = ConvergenceSummary()
    dist = DistSummary()
    sample_runtimes: dict[str, list[float]] = {}
    timed: list[dict] = []

    def _run_of(e: dict) -> int:
        try:
            return int(e.get("run_index", -1))
        except (TypeError, ValueError):
            return -1

    for e in events:
        if "wall_ms" in e:
            timed.append(e)
        ev = e.get("ev")
        if ev == "dist.worker":
            owner = str(e.get("owner", "?"))
            if owner not in dist.workers:
                dist.workers.append(owner)
        elif ev == "dist.lease_reclaimed":
            r = _run_of(e)
            dist.retries_by_run[r] = dist.retries_by_run.get(r, 0) + 1
        elif ev == "dist.task_stolen":
            r = _run_of(e)
            dist.steals_by_run[r] = dist.steals_by_run.get(r, 0) + 1
        elif ev == "dist.task_exhausted":
            dist.exhausted += 1
        elif ev == "dist.queue_unavailable":
            dist.outages += 1
        elif ev == "dist.fallback":
            dist.fallback = True
        if ev == "fluid.solve":
            conv.n_solves += 1
            if e.get("converged", True):
                conv.n_converged += 1
            else:
                conv.worst.append(e)
            # the mean |dx| is the convergence criterion; older traces
            # only carry the max, so fall back to it
            r = e.get("residual_mean", e.get("residual"))
            if r is not None:
                conv.residuals.append(float(r))
            conv.iters_to_tol.append(e.get("iters_to_tol"))
        elif ev == "campaign.sample":
            mode = str(e.get("mode", "?"))
            sample_runtimes.setdefault(mode, []).append(float(e.get("runtime_s", 0.0)))
    conv.worst.sort(key=lambda e: -float(e.get("residual", 0.0)))
    conv.worst = conv.worst[:top]
    timed.sort(key=lambda e: -float(e["wall_ms"]))

    return TraceSummary(
        source=label,
        n_events=len(events),
        by_type=dict(by_type.most_common()),
        convergence=conv,
        slowest=timed[:top],
        sample_runtimes=sample_runtimes,
        dist=dist,
    )


def _bar(count: int, peak: int, width: int = 32) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1, round(width * count / peak)) if count else ""


def _event_label(e: dict) -> str:
    """Compact context string for a timed event."""
    skip = {"ev", "ts", "seq", "wall_ms"}
    keys = ("app", "mode", "sample", "phase", "interval", "flows", "converged", "residual")
    parts = []
    for k in keys:
        if k in e and k not in skip:
            v = e[k]
            parts.append(f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}")
    return " ".join(parts)


def format_summary(s: TraceSummary) -> str:
    """Render a summary as the CLI's plain-text report."""
    lines: list[str] = [f"trace: {s.source}  ({s.n_events} events)"]
    for ev, n in s.by_type.items():
        lines.append(f"  {ev:<20s} {n:6d}")

    c = s.convergence
    if c.n_solves:
        lines.append("")
        lines.append(f"fluid solver: {c.n_solves} solves")
        pct = 100.0 * c.n_converged / c.n_solves
        lines.append(
            f"  converged {c.n_converged}/{c.n_solves} ({pct:.1f}%)"
            + (
                f"   residual p50 {_percentile(c.residuals, 50):.2e}"
                f"  p95 {_percentile(c.residuals, 95):.2e}"
                f"  max {max(c.residuals):.2e}"
                if c.residuals
                else ""
            )
        )
        hist = TallyCounter(
            it if it is not None else -1 for it in c.iters_to_tol
        )
        if hist:
            lines.append("  iterations to tolerance:")
            peak = max(hist.values())
            for it in sorted(hist, key=lambda v: (v < 0, v)):
                label = f"{it:>4d}" if it >= 0 else " cap"
                n = hist[it]
                lines.append(f"    {label} | {_bar(n, peak)} {n}")
        for e in c.worst:
            lines.append(
                f"  NON-CONVERGED: residual {e.get('residual', float('nan')):.2e}"
                f"  flows {e.get('flows', '?')}  iterations {e.get('iterations', '?')}"
            )

    if s.slowest:
        lines.append("")
        lines.append("slowest instrumented spans:")
        for e in s.slowest:
            lines.append(
                f"  {float(e['wall_ms']):9.2f} ms  {e['ev']:<18s} {_event_label(e)}"
            )

    d = s.dist
    if d.active:
        lines.append("")
        lines.append(
            f"distributed queue: {len(d.workers)} worker(s)  "
            f"retries {sum(d.retries_by_run.values())}  "
            f"steals {sum(d.steals_by_run.values())}"
            + (f"  exhausted {d.exhausted}" if d.exhausted else "")
            + (f"  outages {d.outages}" if d.outages else "")
            + ("  LOCAL FALLBACK" if d.fallback else "")
        )
        for owner in d.workers:
            lines.append(f"  worker {owner}")
        touched = sorted(set(d.retries_by_run) | set(d.steals_by_run))
        for r in touched:
            label = f"run {r}" if r >= 0 else "run ?"
            parts = []
            if d.retries_by_run.get(r):
                parts.append(f"retried x{d.retries_by_run[r]}")
            if d.steals_by_run.get(r):
                parts.append(f"stolen x{d.steals_by_run[r]}")
            lines.append(f"  {label}: " + ", ".join(parts))

    if s.sample_runtimes:
        lines.append("")
        lines.append("campaign samples:")
        for mode, runs in sorted(s.sample_runtimes.items()):
            mean = sum(runs) / len(runs)
            lines.append(
                f"  {mode:<6s} n={len(runs):<3d} mean {mean:10.1f} s"
                f"  min {min(runs):10.1f}  max {max(runs):10.1f}"
            )
    return "\n".join(lines)
