"""Live event streaming: in-process pub/sub and trace tail-following.

Three pieces make the observability surfaces (``repro-study top``, the
``/metrics`` exporter, ``report --follow``) work on a *running*
campaign instead of a finished trace file:

* :class:`EventBus` + :class:`BusTraceWriter` — an in-process pub/sub
  fanout.  The CLI splices a ``BusTraceWriter`` into the telemetry
  bundle (via :class:`~repro.telemetry.trace.MultiTraceWriter`), so
  every event the engines emit also reaches live subscribers — the
  exporter's progress tracker, primarily — with zero changes to the
  engines themselves.
* :class:`TraceTail` — an incremental JSONL reader for following a
  trace file another process is appending to.  It buffers torn trailing
  lines (a live writer tears at most one), survives truncation/rotation
  by reopening, and returns only complete, parsed events.
* :class:`CampaignProgress` — folds campaign/guard events (bus- or
  tail-delivered) into a progress snapshot: done/failed/total runs, an
  ETA from the observed completion rate, per-worker last-seen liveness,
  guard violations, and the recent stall-to-flit health ratios the
  ``top`` sparkline renders.

Ordering: worker-tagged events arrive in commit order (the parallel
executor forwards them with ``run_index`` tags, see ``order_events``);
``CampaignProgress`` is insensitive to arrival order for counts and
uses max-merge for timestamps, so live and post-hoc folds agree.
"""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path
from typing import Any, Callable

from repro.telemetry.trace import TraceWriter

Subscriber = Callable[[dict], None]


class EventBus:
    """Thread-safe in-process pub/sub for telemetry events.

    Subscribers are called synchronously on the publishing thread; a
    subscriber that raises is dropped (a broken observer must never
    break the run it observes).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: list[Subscriber] = []
        self.published = 0

    def subscribe(self, fn: Subscriber) -> Callable[[], None]:
        """Register ``fn``; returns an unsubscribe callable."""
        with self._lock:
            self._subs.append(fn)

        def _unsubscribe() -> None:
            with self._lock:
                if fn in self._subs:
                    self._subs.remove(fn)

        return _unsubscribe

    def publish(self, event: dict) -> None:
        with self._lock:
            subs = list(self._subs)
            self.published += 1
        dead = []
        for fn in subs:
            try:
                fn(event)
            except Exception:
                dead.append(fn)
        if dead:
            with self._lock:
                for fn in dead:
                    if fn in self._subs:
                        self._subs.remove(fn)


class BusTraceWriter(TraceWriter):
    """A trace sink that publishes every event onto an :class:`EventBus`."""

    def __init__(self, bus: EventBus) -> None:
        super().__init__()
        self.bus = bus

    def write_event(self, record: dict) -> None:
        self.bus.publish(record)


class TraceTail:
    """Incremental follow-reader for a JSONL trace being written live.

    Each :meth:`poll` returns the complete events appended since the
    previous poll.  A torn trailing line (the writer mid-append) is
    buffered until its remainder arrives; truncation or replacement of
    the file (size shrank, fresh ``open("w")``) resets the reader to the
    new beginning; a missing file simply yields no events yet.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._pos = 0
        self._buf = b""
        #: lines that never became valid JSON (damage, not liveness)
        self.n_bad = 0

    def poll(self) -> list[dict]:
        try:
            with self.path.open("rb") as fh:
                fh.seek(0, io.SEEK_END)
                size = fh.tell()
                if size < self._pos:
                    # truncated or rotated: start over from the top
                    self._pos = 0
                    self._buf = b""
                if size == self._pos:
                    return []
                fh.seek(self._pos)
                chunk = fh.read(size - self._pos)
                self._pos = size
        except FileNotFoundError:
            return []
        data = self._buf + chunk
        events: list[dict] = []
        lines = data.split(b"\n")
        self._buf = lines.pop()  # b"" when data ended on a newline
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                self.n_bad += 1
                continue
            if isinstance(ev, dict):
                events.append(ev)
            else:
                self.n_bad += 1
        return events


class CampaignProgress:
    """Folds telemetry events into a live campaign progress snapshot.

    Feed it events from an :class:`EventBus` subscription or a
    :class:`TraceTail` poll loop; read :meth:`snapshot` at any time.
    Thread-safe: the exporter reads while the campaign thread feeds.
    """

    #: stall-ratio history length kept for the health sparkline
    HEALTH_WINDOW = 60

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.app = ""
        self.n_nodes = 0
        self.modes: list[str] = []
        self.samples = 0
        self.jobs = 1
        self.heartbeat_dir: str | None = None
        self.started_at: float | None = None
        self.ended_at: float | None = None
        self.resumed = 0
        self.done = 0
        self.failed = 0
        self.nonconverged = 0
        self.attempts = 0
        self.violations: list[dict] = []
        self.worker_lost: list[dict] = []
        self.worker_hung: list[dict] = []
        self.last_event_ts: float | None = None
        #: worker id -> wall timestamp of its most recent event
        self.worker_seen: dict[int, float] = {}
        #: shared queue directory (``--queue`` campaigns), else None
        self.queue: str | None = None
        #: owner ("host:pid") -> {"worker": id, "ts": last seen,
        #: "state": "live" | "lost lease" | "stolen", "done": merged runs}
        self.dist_workers: dict[str, dict] = {}
        self.dist_retries = 0
        self.dist_steals = 0
        self.dist_exhausted = 0
        self.dist_outages = 0
        self.dist_fallback = False
        self.queue_depth: int | None = None
        self.queue_leases = 0
        #: recent per-run stall-to-flit ratios (health sparkline feed)
        self.health: list[float] = []
        #: recent per-run wall-clock costs (drives the ETA)
        self._run_walls: list[float] = []

    # ------------------------------------------------------------------
    def feed(self, event: dict) -> None:
        """Fold one telemetry event into the progress state."""
        ev = event.get("ev")
        ts = event.get("ts")
        with self._lock:
            if isinstance(ts, (int, float)):
                self.last_event_ts = max(self.last_event_ts or 0.0, float(ts))
                wid = event.get("worker")
                if isinstance(wid, int):
                    self.worker_seen[wid] = max(
                        self.worker_seen.get(wid, 0.0), float(ts)
                    )
            if ev == "campaign.start":
                self.app = str(event.get("app", ""))
                self.n_nodes = int(event.get("n_nodes", 0) or 0)
                self.modes = [str(m) for m in event.get("modes", [])]
                self.samples = int(event.get("samples", 0) or 0)
                self.resumed = int(event.get("resumed_runs", 0) or 0)
                self.jobs = int(event.get("jobs", 1) or 1)
                self.done = self.resumed
                q = event.get("queue")
                self.queue = str(q) if q else None
                if isinstance(ts, (int, float)):
                    self.started_at = float(ts)
            elif ev == "campaign.workers":
                self.jobs = int(event.get("jobs", self.jobs) or self.jobs)
                hb = event.get("heartbeat_dir")
                self.heartbeat_dir = str(hb) if hb else None
            elif ev == "campaign.sample":
                self.done += 1
                self.attempts += int(event.get("attempts", 1) or 1)
                if event.get("status") != "ok":
                    self.failed += 1
                if event.get("solver_converged") is False:
                    self.nonconverged += 1
                wall = event.get("wall_ms")
                if isinstance(wall, (int, float)):
                    self._run_walls.append(float(wall) / 1e3)
                    del self._run_walls[: -self.HEALTH_WINDOW]
                wid = event.get("worker")
                if isinstance(wid, int) and self.dist_workers:
                    for d in self.dist_workers.values():
                        if d.get("worker") == wid:
                            d["done"] += 1
                            if isinstance(ts, (int, float)):
                                d["ts"] = max(d["ts"], float(ts))
                            break
            elif ev == "campaign.end":
                if isinstance(ts, (int, float)):
                    self.ended_at = float(ts)
            elif ev == "dist.worker":
                owner = str(event.get("owner", "?"))
                self.dist_workers.setdefault(
                    owner,
                    {
                        "worker": event.get("worker"),
                        "ts": float(ts) if isinstance(ts, (int, float)) else 0.0,
                        "state": "live",
                        "done": 0,
                    },
                )
            elif ev == "dist.lease_reclaimed":
                self.dist_retries += 1
                victim = str(event.get("victim", "") or "")
                if victim in self.dist_workers:
                    self.dist_workers[victim]["state"] = "lost lease"
            elif ev == "dist.task_stolen":
                self.dist_steals += 1
                victim = str(event.get("victim", "") or "")
                if victim in self.dist_workers:
                    self.dist_workers[victim]["state"] = "stolen"
            elif ev == "dist.task_exhausted":
                self.dist_exhausted += 1
            elif ev == "dist.queue_unavailable":
                self.dist_outages += 1
            elif ev == "dist.fallback":
                self.dist_fallback = True
            elif ev == "dist.queue":
                self.queue_depth = int(event.get("depth", 0) or 0)
                self.queue_leases = int(event.get("leases", 0) or 0)
            elif ev == "guard.violation":
                self.violations.append(dict(event))
            elif ev == "guard.worker_hung":
                self.worker_hung.append(dict(event))
            elif ev == "guard.worker_lost":
                self.worker_lost.append(dict(event))
            elif ev in ("packet.run", "fluid.solve", "facility.interval"):
                ratio = event.get("stall_ratio")
                if ratio is None:
                    ratio = event.get("residual_mean")
                if isinstance(ratio, (int, float)):
                    self.health.append(float(ratio))
                    del self.health[: -self.HEALTH_WINDOW]

    def feed_many(self, events) -> int:
        n = 0
        for ev in events:
            self.feed(ev)
            n += 1
        return n

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return self.samples * max(len(self.modes), 1)

    @property
    def running(self) -> bool:
        return self.started_at is not None and self.ended_at is None

    def eta_seconds(self, now: float | None = None) -> float | None:
        """Remaining wall time from the observed completion rate.

        ``None`` until at least one fresh run has completed (resumed
        runs carry no timing signal) or once the campaign has ended.
        """
        with self._lock:
            if self.ended_at is not None or self.started_at is None:
                return None
            fresh = self.done - self.resumed
            remaining = self.total - self.done
            if fresh <= 0 or remaining <= 0:
                return None
            now = self.last_event_ts if now is None else now
            if now is None:
                return None
            elapsed = max(now - self.started_at, 1e-9)
            return remaining * elapsed / fresh

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """A JSON-ready view of the campaign's live state (``/runs``)."""
        eta = self.eta_seconds(now)
        with self._lock:
            return {
                "app": self.app,
                "n_nodes": self.n_nodes,
                "modes": list(self.modes),
                "samples": self.samples,
                "jobs": self.jobs,
                "total_runs": self.total,
                "done_runs": self.done,
                "failed_runs": self.failed,
                "nonconverged_runs": self.nonconverged,
                "resumed_runs": self.resumed,
                "attempts": self.attempts,
                "running": self.running,
                "eta_seconds": eta,
                "started_at": self.started_at,
                "ended_at": self.ended_at,
                "last_event_ts": self.last_event_ts,
                "workers_seen": {str(k): v for k, v in self.worker_seen.items()},
                "guard_violations": len(self.violations),
                "workers_hung": len(self.worker_hung),
                "workers_lost": len(self.worker_lost),
                "health_ratios": list(self.health),
                "heartbeat_dir": self.heartbeat_dir,
                "queue": self.queue,
                "queue_depth": self.queue_depth,
                "queue_leases": self.queue_leases,
                "dist_workers": {k: dict(v) for k, v in self.dist_workers.items()},
                "dist_retries": self.dist_retries,
                "dist_steals": self.dist_steals,
                "dist_exhausted": self.dist_exhausted,
                "dist_outages": self.dist_outages,
                "dist_fallback": self.dist_fallback,
            }
