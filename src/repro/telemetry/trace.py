"""Structured JSONL event journal.

Every engine emits flat, one-line JSON events through a
:class:`TraceWriter`; the default sink is :data:`NULL_TRACE`, whose
``emit`` is a no-op and whose ``enabled`` flag lets hot paths skip even
building the event payload.  The schema is documented in
``docs/OBSERVABILITY.md``; every event carries:

* ``ev``  — dotted event name (``fluid.solve``, ``campaign.sample``, ...)
* ``ts``  — wall-clock UNIX timestamp (seconds, float)
* ``seq`` — per-writer monotonic sequence number

plus event-specific fields.  Numpy scalars are coerced to native Python
numbers so every line is plain JSON.
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Any, Iterable, TextIO


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / arrays and other exotica to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class TraceWriter:
    """Base event sink.  Subclasses implement :meth:`write_event`."""

    enabled: bool = True

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, event: str, /, **fields: Any) -> None:
        """Record one event.  No-op when the writer is disabled."""
        if not self.enabled:
            return
        record = {"ev": event, "ts": time.time(), "seq": self._seq}
        self._seq += 1
        for k, v in fields.items():
            record[k] = _jsonable(v)
        self.write_event(record)

    def write_event(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTraceWriter(TraceWriter):
    """Disabled sink: the zero-overhead default."""

    enabled = False

    def emit(self, event: str, /, **fields: Any) -> None:  # fast path
        return

    def write_event(self, record: dict) -> None:
        return


#: shared disabled sink
NULL_TRACE = NullTraceWriter()


class JsonlTraceWriter(TraceWriter):
    """Appends one JSON object per line to a file."""

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self._fh: TextIO | None = self.path.open("w", buffering=1)

    def write_event(self, record: dict) -> None:
        if self._fh is None:
            raise RuntimeError(f"trace writer for {self.path} is closed")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class MemoryTraceWriter(TraceWriter):
    """Keeps events in a list — for tests and in-process analysis."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[dict] = []

    def write_event(self, record: dict) -> None:
        self.events.append(record)

    def of_type(self, event: str) -> list[dict]:
        return [e for e in self.events if e["ev"] == event]


class LoggingTraceWriter(TraceWriter):
    """Mirrors events onto a :mod:`logging` logger (``-vv`` CLI mode)."""

    def __init__(self, logger: logging.Logger | None = None, level: int = logging.DEBUG) -> None:
        super().__init__()
        self.logger = logger or logging.getLogger("repro.telemetry")
        self.level = level

    def write_event(self, record: dict) -> None:
        if self.logger.isEnabledFor(self.level):
            body = " ".join(
                f"{k}={v}" for k, v in record.items() if k not in ("ev", "ts", "seq")
            )
            self.logger.log(self.level, "%s %s", record["ev"], body)


class MultiTraceWriter(TraceWriter):
    """Fans one event stream out to several sinks."""

    def __init__(self, writers: Iterable[TraceWriter]) -> None:
        super().__init__()
        self.writers = [w for w in writers if w.enabled]
        self.enabled = bool(self.writers)

    def write_event(self, record: dict) -> None:
        for w in self.writers:
            w.write_event(dict(record))

    def close(self) -> None:
        for w in self.writers:
            w.close()


class TraceScan:
    """Result of :func:`scan_trace`: events plus damage diagnostics."""

    __slots__ = ("path", "events", "n_bad", "truncated_tail")

    def __init__(
        self, path: str, events: list[dict], n_bad: int, truncated_tail: bool
    ) -> None:
        self.path = path
        self.events = events
        self.n_bad = n_bad
        #: the final line is torn — no trailing newline or partial JSON,
        #: the signature of a live writer mid-append or a crash
        self.truncated_tail = truncated_tail


def scan_trace(path: str | Path) -> TraceScan:
    """Tolerantly parse a trace, reporting damage instead of hiding it.

    Unlike :func:`read_trace` (which silently skips malformed lines),
    the scan counts every undecodable line and flags a torn final line
    separately — a live or crash-interrupted writer tears exactly one
    trailing line, which is expected damage, not corruption.
    """
    raw = Path(path).read_bytes()
    events: list[dict] = []
    n_bad = 0
    truncated_tail = raw != b"" and not raw.endswith(b"\n")
    lines = raw.decode("utf-8", errors="replace").splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                truncated_tail = True
            else:
                n_bad += 1
            continue
        if isinstance(ev, dict):
            events.append(ev)
        else:
            n_bad += 1
    return TraceScan(str(path), events, n_bad, truncated_tail)


def read_trace(path: str | Path, *, strict: bool = False) -> list[dict]:
    """Parse a JSONL trace file back into event dicts.

    Malformed lines are silently skipped unless ``strict`` is set, in
    which case they raise ``ValueError`` with the offending line number.
    """
    events: list[dict] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(f"{path}:{lineno}: bad JSON ({exc})") from exc
    return events
