"""The ambient telemetry handle threaded through the engines.

A :class:`Telemetry` bundles one trace sink and one metrics registry.
Engines accept an explicit ``telemetry=`` keyword; when it is omitted
they fall back to the process-wide *current* telemetry, which defaults
to :data:`NULL_TELEMETRY` (disabled sink + disabled registry).  The CLI
installs a real instance for the duration of a command via
:func:`use_telemetry`.

Hot paths must guard instrumentation with ``tel.enabled`` (or the finer
``tel.trace.enabled`` / ``tel.metrics.enabled``) so the default
configuration costs one attribute check per solve, nothing more.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.series import SeriesConfig
from repro.telemetry.trace import NULL_TRACE, TraceWriter


@dataclass
class Telemetry:
    """One trace sink plus one metrics registry.

    ``series`` opts a run into sim-time cadence sampling
    (:mod:`repro.telemetry.series`); ``None`` — the default — keeps the
    engine hot loops sampling-free.
    """

    trace: TraceWriter = NULL_TRACE
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    series: SeriesConfig | None = None

    @property
    def enabled(self) -> bool:
        return self.trace.enabled or self.metrics.enabled or self.series is not None

    def event(self, name: str, /, **fields) -> None:
        """Emit a trace event (no-op on a disabled sink)."""
        self.trace.emit(name, **fields)

    def close(self) -> None:
        self.trace.close()


#: the do-nothing default: disabled sink, disabled registry
NULL_TELEMETRY = Telemetry(trace=NULL_TRACE, metrics=MetricsRegistry(enabled=False))

_current: Telemetry = NULL_TELEMETRY


def current_telemetry() -> Telemetry:
    """The process-wide telemetry engines fall back to."""
    return _current


def set_current_telemetry(tel: Telemetry | None) -> Telemetry:
    """Install ``tel`` (``None`` restores the null default); returns the old one."""
    global _current
    old = _current
    _current = tel if tel is not None else NULL_TELEMETRY
    return old


@contextmanager
def use_telemetry(tel: Telemetry):
    """Scope ``tel`` as the current telemetry for a ``with`` block."""
    old = set_current_telemetry(tel)
    try:
        yield tel
    finally:
        set_current_telemetry(old)


def resolve_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """The handle an engine should use: explicit argument or the ambient one."""
    return telemetry if telemetry is not None else _current
