"""Terminal rendering for ``repro-study top``: live campaign progress.

Pure formatting — all state comes from a
:class:`~repro.telemetry.stream.CampaignProgress` snapshot plus
(optionally) the parallel executor's per-worker heartbeat files.  The
renderer is a pure function of (snapshot, heartbeat ages, now), so it
is trivially testable and never touches the campaign it watches.
"""

from __future__ import annotations

import os
import time
from typing import Any

#: eighth-block ramp for the health sparkline
_SPARK = " ▁▂▃▄▅▆▇█"

#: a worker whose heartbeat file is older than this is rendered stale
STALE_AFTER = 15.0


def sparkline(values: list[float], width: int = 30) -> str:
    """Scale ``values`` (most recent last) onto the block-char ramp."""
    if not values:
        return ""
    tail = values[-width:]
    top = max(tail)
    if top <= 0:
        return _SPARK[1] * len(tail)
    out = []
    for v in tail:
        idx = 1 + int((len(_SPARK) - 2) * min(max(v, 0.0) / top, 1.0))
        out.append(_SPARK[idx])
    return "".join(out)


def progress_bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + "-" * width + "]"
    frac = min(max(done / total, 0.0), 1.0)
    filled = int(round(frac * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def format_duration(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    seconds = max(float(seconds), 0.0)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


def heartbeat_ages(
    directory: str | None, now: float | None = None
) -> dict[str, float]:
    """Per-worker heartbeat staleness (seconds) from ``<pid>.hb`` mtimes."""
    if not directory or not os.path.isdir(directory):
        return {}
    now = time.time() if now is None else now
    out: dict[str, float] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".hb"):
            continue
        try:
            age = now - os.path.getmtime(os.path.join(directory, name))
        except OSError:
            continue  # worker exited between listdir and stat
        out[name[: -len(".hb")]] = max(age, 0.0)
    return out


def render_top(
    snap: dict[str, Any],
    *,
    heartbeats: dict[str, float] | None = None,
    now: float | None = None,
) -> str:
    """One ``top`` frame from a progress snapshot (pure function)."""
    now = time.time() if now is None else now
    lines: list[str] = []
    app = snap.get("app") or "?"
    total = int(snap.get("total_runs") or 0)
    done = int(snap.get("done_runs") or 0)
    failed = int(snap.get("failed_runs") or 0)
    state = "running" if snap.get("running") else (
        "finished" if snap.get("ended_at") else "waiting"
    )
    lines.append(
        f"campaign {app} x{snap.get('n_nodes', 0)}  "
        f"modes={','.join(snap.get('modes') or []) or '?'}  "
        f"jobs={snap.get('jobs', 1)}  [{state}]"
    )
    pct = 100.0 * done / total if total else 0.0
    lines.append(
        f"  {progress_bar(done, total)} {done}/{total} runs ({pct:.0f}%)  "
        f"eta {format_duration(snap.get('eta_seconds'))}"
    )
    status = f"  ok {done - failed}  failed {failed}"
    if snap.get("nonconverged_runs"):
        status += f"  nonconverged {snap['nonconverged_runs']}"
    if snap.get("resumed_runs"):
        status += f"  resumed {snap['resumed_runs']}"
    lines.append(status)

    health = snap.get("health_ratios") or []
    if health:
        lines.append(
            f"  stall/flit health {sparkline(health)}  last {health[-1]:.4f}"
        )

    if snap.get("queue"):
        qline = f"  queue {snap['queue']}"
        depth = snap.get("queue_depth")
        if depth is not None:
            qline += f"  depth {depth}  leases {snap.get('queue_leases', 0)}"
        extras = []
        if snap.get("dist_retries"):
            extras.append(f"retries {snap['dist_retries']}")
        if snap.get("dist_steals"):
            extras.append(f"steals {snap['dist_steals']}")
        if snap.get("dist_exhausted"):
            extras.append(f"exhausted {snap['dist_exhausted']}")
        if snap.get("dist_outages"):
            extras.append(f"outages {snap['dist_outages']}")
        if snap.get("dist_fallback"):
            extras.append("LOCAL FALLBACK")
        if extras:
            qline += "  " + "  ".join(extras)
        lines.append(qline)
        dist_workers = snap.get("dist_workers") or {}
        for owner, d in sorted(dist_workers.items()):
            state = d.get("state", "live")
            ts = d.get("ts") or 0.0
            age = max(now - float(ts), 0.0) if ts else None
            if state == "live":
                mark = (
                    "live" if age is None or age < STALE_AFTER else f"quiet {age:.0f}s"
                )
            else:
                mark = state.upper()
            lines.append(
                f"    {owner:<24s} done {int(d.get('done', 0)):>4d}  [{mark}]"
            )

    heartbeats = heartbeats or {}
    if heartbeats:
        parts = []
        for pid, age in heartbeats.items():
            mark = "live" if age < STALE_AFTER else f"STALE {age:.0f}s"
            parts.append(f"{pid}:{mark}")
        lines.append(f"  workers({len(heartbeats)}) " + "  ".join(parts))
    elif snap.get("workers_seen"):
        parts = []
        for wid, ts in sorted(snap["workers_seen"].items()):
            age = max(now - float(ts), 0.0)
            mark = "live" if age < STALE_AFTER else f"quiet {age:.0f}s"
            parts.append(f"w{wid}:{mark}")
        lines.append(f"  workers({len(parts)}) " + "  ".join(parts))

    v = int(snap.get("guard_violations") or 0)
    hung = int(snap.get("workers_hung") or 0)
    lost = int(snap.get("workers_lost") or 0)
    if v or hung or lost:
        lines.append(
            f"  GUARD violations {v}  workers hung {hung}  lost {lost}"
        )
    return "\n".join(lines) + "\n"
