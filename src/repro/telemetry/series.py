"""Sim-time cadence sampling of counter and latency state (live series).

The paper's production analyses consume LDMS windows: periodic counter
deltas keyed to wall-clock cadence on the real machine.  Inside the
simulator the analogue is *simulated* time — a run's series must be a
pure function of the run itself, never of host speed.  This module
provides that layer:

* :class:`SeriesConfig` — opt-in knob carried on
  :class:`repro.telemetry.Telemetry`; engines sample only when present.
* :class:`CadenceRecorder` — accepts ``(sim_time, flit_delta,
  stall_delta)`` observations from an engine hot loop and bins them into
  contiguous cadence windows.  The window store is ring-bounded: when
  ``capacity`` windows accumulate, adjacent pairs coalesce and the
  cadence doubles, so memory stays fixed while totals are preserved
  exactly.
* :class:`QuantileSketch` — fixed-size deterministic sketch for tail
  latency (p50/p95/p99/max).  Compaction keeps every second element of
  the sorted buffer and doubles the weight — no randomness, so serial
  and parallel campaigns produce byte-identical sketches.
* :class:`CounterSeries` — the finalized, picklable result attached to
  :class:`repro.core.experiment.RunRecord` and serialized through the
  checkpoint/CSV/JSON export paths.

Everything here is deterministic given the same observation sequence:
no wall clocks, no randomness, no dict-order dependence.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SeriesConfig:
    """Opt-in configuration for cadence-sampled run series.

    ``cadence`` is in *simulated* seconds.  ``capacity`` bounds the
    window count (must be even: full rings coalesce pairwise);
    ``sketch_size`` bounds the latency sketch buffer.
    """

    cadence: float
    capacity: int = 512
    sketch_size: int = 256

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError("cadence must be > 0")
        if self.capacity < 2 or self.capacity % 2:
            raise ValueError("capacity must be an even integer >= 2")
        if self.sketch_size < 8:
            raise ValueError("sketch_size must be >= 8")


class QuantileSketch:
    """Fixed-capacity deterministic quantile sketch.

    A systematic sample of the observation stream: every ``stride``-th
    value is kept in arrival order; when the buffer fills, every second
    kept value (by arrival) is dropped and the stride doubles.  All
    retained values therefore carry equal weight, so quantiles reduce to
    order statistics over the buffer.  ``max`` and ``min`` are tracked
    exactly — the paper's headline tail metrics must not be sketched
    away.  No randomness: serial and parallel campaigns produce
    identical sketches from identical streams.
    """

    __slots__ = ("capacity", "count", "_stride", "_values", "_min", "_max")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 8:
            raise ValueError("sketch capacity must be >= 8")
        self.capacity = int(capacity)
        self.count = 0
        self._stride = 1
        self._values: list[float] = []
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if (self.count - 1) % self._stride:
            return
        self._values.append(v)
        if len(self._values) >= self.capacity:
            # thin by arrival order: survivors sit at stream positions
            # 0, 2*stride, 4*stride, ... — consistent with the new stride
            self._values = self._values[::2]
            self._stride *= 2

    def observe_many(self, values) -> None:
        for v in values:
            self.observe(v)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]); exact at 0 and 1."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        vals = sorted(self._values)
        idx = min(int(q * len(vals)), len(vals) - 1)
        return vals[idx]

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "count": self.count,
            "stride": self._stride,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "values": list(self._values),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QuantileSketch":
        sk = cls(capacity=d["capacity"])
        sk.count = int(d["count"])
        sk._stride = int(d["stride"])
        sk._values = [float(v) for v in d["values"]]
        sk._min = float(d["min"]) if d.get("min") is not None else float("inf")
        sk._max = float(d["max"]) if d.get("max") is not None else float("-inf")
        return sk

    def summary(self) -> dict[str, float]:
        """The headline percentiles (Fig. 14 style)."""
        return {
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


@dataclass
class SeriesWindow:
    """One cadence window's counter deltas."""

    t_start: float
    t_end: float
    flits: float
    stalls: float
    #: True for the end-of-run residual covering less than one cadence
    partial: bool = False

    @property
    def ratio(self) -> float:
        """Stall-to-flit ratio for the window (0 where idle)."""
        return self.stalls / self.flits if self.flits > 0 else 0.0

    def to_dict(self) -> dict:
        d = {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "flits": self.flits,
            "stalls": self.stalls,
        }
        if self.partial:
            d["partial"] = True
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SeriesWindow":
        return cls(
            t_start=float(d["t_start"]),
            t_end=float(d["t_end"]),
            flits=float(d["flits"]),
            stalls=float(d["stalls"]),
            partial=bool(d.get("partial", False)),
        )


@dataclass
class CounterSeries:
    """Finalized cadence series for one run (picklable, JSON-ready)."""

    cadence: float
    windows: list[SeriesWindow] = field(default_factory=list)
    #: end-of-run aggregate totals the windows must sum to (invariant
    #: checked by the tier-1 suite)
    aggregate_flits: float = 0.0
    aggregate_stalls: float = 0.0
    latency: QuantileSketch | None = None
    #: how many times the ring coalesced (cadence = requested * 2**n)
    n_coalesced: int = 0

    def total_flits(self) -> float:
        return sum(w.flits for w in self.windows)

    def total_stalls(self) -> float:
        return sum(w.stalls for w in self.windows)

    def ratios(self) -> list[float]:
        """Per-window stall-to-flit health ratios."""
        return [w.ratio for w in self.windows]

    def to_dict(self) -> dict:
        d = {
            "cadence": self.cadence,
            "aggregate_flits": self.aggregate_flits,
            "aggregate_stalls": self.aggregate_stalls,
            "n_coalesced": self.n_coalesced,
            "windows": [w.to_dict() for w in self.windows],
        }
        if self.latency is not None:
            d["latency"] = self.latency.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CounterSeries":
        return cls(
            cadence=float(d["cadence"]),
            windows=[SeriesWindow.from_dict(w) for w in d["windows"]],
            aggregate_flits=float(d["aggregate_flits"]),
            aggregate_stalls=float(d["aggregate_stalls"]),
            n_coalesced=int(d.get("n_coalesced", 0)),
            latency=(
                QuantileSketch.from_dict(d["latency"]) if "latency" in d else None
            ),
        )


class CadenceRecorder:
    """Bins engine observations into contiguous sim-time cadence windows.

    Engines call :meth:`add` with the counter deltas accumulated up to
    sim time ``t`` (monotone non-decreasing).  Windows are contiguous
    from t=0; a delta observed at ``t`` lands in the window whose span
    contains it, and crossing a boundary closes the window.  Gaps emit
    empty windows — the ring coalescing keeps that bounded even for
    idle-heavy runs.

    Call :meth:`finalize` once at end of run with the run's end time and
    the engine's aggregate counter totals; the trailing sub-cadence
    residue is flagged ``partial=True`` (same contract as
    :meth:`repro.monitoring.ldms.LdmsCollector.finalize`).
    """

    def __init__(self, config: SeriesConfig) -> None:
        self.config = config
        self.cadence = float(config.cadence)
        self._windows: list[SeriesWindow] = []
        self._wstart = 0.0
        self._facc = 0.0
        self._sacc = 0.0
        self._t = 0.0
        self._n_coalesced = 0
        self.sketch = QuantileSketch(config.sketch_size)
        self.result: CounterSeries | None = None

    def add(self, t: float, flit_delta: float, stall_delta: float) -> None:
        """Attribute counter deltas accumulated up to sim time ``t``."""
        t = float(t)
        if t < self._t:
            raise ValueError(f"time {t} precedes prior observation at {self._t}")
        self._t = t
        while t > self._wstart + self.cadence:
            self._close_window()
        self._facc += float(flit_delta)
        self._sacc += float(stall_delta)

    def observe_latency(self, values) -> None:
        """Feed latency samples (scalar or iterable) into the sketch."""
        try:
            self.sketch.observe_many(values)
        except TypeError:
            self.sketch.observe(values)

    def _close_window(self) -> None:
        self._windows.append(
            SeriesWindow(
                t_start=self._wstart,
                t_end=self._wstart + self.cadence,
                flits=self._facc,
                stalls=self._sacc,
            )
        )
        self._wstart += self.cadence
        self._facc = 0.0
        self._sacc = 0.0
        if len(self._windows) >= self.config.capacity:
            self._coalesce()

    def _coalesce(self) -> None:
        """Merge adjacent window pairs and double the cadence.

        ``_wstart`` is ``capacity * cadence`` here; capacity is even, so
        alignment to the doubled cadence is preserved exactly and totals
        are conserved.
        """
        merged = [
            SeriesWindow(
                t_start=a.t_start,
                t_end=b.t_end,
                flits=a.flits + b.flits,
                stalls=a.stalls + b.stalls,
            )
            for a, b in zip(self._windows[0::2], self._windows[1::2])
        ]
        self._windows = merged
        self.cadence *= 2.0
        self._n_coalesced += 1

    def finalize(
        self, t_end: float, aggregate_flits: float, aggregate_stalls: float
    ) -> CounterSeries:
        """Close the trailing window and freeze the series."""
        t_end = float(max(t_end, self._t))
        # runs ending past several boundaries (idle tails) close full
        # windows first; strict >= so an exact-boundary end is full
        while t_end >= self._wstart + self.cadence:
            self._close_window()
        if t_end > self._wstart or self._facc or self._sacc:
            self._windows.append(
                SeriesWindow(
                    t_start=self._wstart,
                    t_end=max(t_end, self._wstart),
                    flits=self._facc,
                    stalls=self._sacc,
                    partial=True,
                )
            )
            self._facc = 0.0
            self._sacc = 0.0
            self._wstart = max(t_end, self._wstart)
        self.result = CounterSeries(
            cadence=self.cadence,
            windows=list(self._windows),
            aggregate_flits=float(aggregate_flits),
            aggregate_stalls=float(aggregate_stalls),
            latency=self.sketch if self.sketch.count else None,
            n_coalesced=self._n_coalesced,
        )
        return self.result
