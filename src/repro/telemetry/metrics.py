"""Metrics primitives: counters, gauges, histograms, and a registry.

The registry is the process-local analogue of the paper's counter
infrastructure: engines increment named instruments while they run, and
the accumulated state is exposed at exit in either JSON or
Prometheus text exposition format (so traces from many runs can be
scraped / diffed with standard tooling).

Instruments are created on first use (``registry.counter("x").inc()``)
and are plain Python objects — no background threads, no sockets.  A
registry created with ``enabled=False`` still works arithmetically; the
flag exists so callers holding a shared registry can skip instrumentation
work entirely (the null-telemetry fast path).
"""

from __future__ import annotations

import json
import math
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

#: default histogram buckets (seconds-oriented, Prometheus-style)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: cap on raw observations kept per histogram for percentile queries
_RESERVOIR_CAP = 65536


def _sanitize(name: str) -> str:
    """Make a metric name Prometheus-legal (dots/dashes to underscores)."""
    out = [c if (c.isalnum() or c in "_:") else "_" for c in name]
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _escape_label(value: str) -> str:
    """Escape a label value per the OpenMetrics text exposition rules."""
    return (
        str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    """Escape HELP text per the OpenMetrics text exposition rules."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Bucketed distribution with exact percentiles on a bounded reservoir.

    ``observe`` updates cumulative Prometheus-style buckets plus count and
    sum; the first ``_RESERVOIR_CAP`` raw observations are also kept so
    :meth:`percentile` is exact for every realistic workload size.
    """

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    _values: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf tail

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        if len(self._values) < _RESERVOIR_CAP:
            self._values.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile (``q`` in [0, 100]) over the stored reservoir."""
        if not (0.0 <= q <= 100.0):
            raise ValueError("q must be in [0, 100]")
        if not self._values:
            return math.nan
        vals = sorted(self._values)
        if len(vals) == 1:
            return vals[0]
        # linear interpolation between closest ranks (numpy's default)
        pos = q / 100.0 * (len(vals) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(vals) - 1)
        frac = pos - lo
        return vals[lo] * (1.0 - frac) + vals[hi] * frac

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_edge, cumulative_count) pairs, ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for edge, c in zip(self.buckets, self.bucket_counts):
            running += c
            out.append((edge, running))
        out.append((math.inf, self.count))
        return out


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument kind; asking for the same
    name as a different kind raises.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._merged_tags: set = set()

    def _get(self, name: str, kind: type, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = kind(name=name, **kwargs)
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"not {kind.__name__}"
            )
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    @contextmanager
    def timeit(self, name: str, help: str = ""):
        """Span context manager: observes elapsed seconds into a histogram.

        Yields a one-slot holder whose ``elapsed`` is filled on exit::

            with registry.timeit("fluid_solve_seconds") as span:
                ...
            span.elapsed  # seconds
        """
        hist = self.histogram(name, help=help)
        span = _Span()
        t0 = time.perf_counter()
        try:
            yield span
        finally:
            span.elapsed = time.perf_counter() - t0
            hist.observe(span.elapsed)

    def merge(self, other: "MetricsRegistry", *, tag=None) -> None:
        """Fold another registry's instruments into this one.

        This is how the parallel dispatcher combines per-worker
        registries into the parent's: counters add, gauges take the
        incoming value (last merge wins), histograms add their bucket
        counts / count / sum and extend the percentile reservoir up to
        its cap.  Merging the same registries in the same order is
        deterministic, so the parallel campaign merges worker snapshots
        in canonical run order.

        ``tag`` labels the source snapshot (the parallel campaign tags
        with the run index): merging the same tag twice would silently
        double-count every counter, so a duplicate is skipped with a
        ``RuntimeWarning`` instead of being folded in again.
        """
        if other is self:
            raise ValueError("cannot merge a MetricsRegistry into itself")
        if tag is not None:
            if tag in self._merged_tags:
                warnings.warn(
                    f"metrics snapshot {tag!r} already merged; skipping the "
                    "duplicate to avoid double-counting",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
            self._merged_tags.add(tag)
        for name, m in sorted(other._metrics.items()):
            if isinstance(m, Counter):
                self.counter(name, m.help).inc(m.value)
            elif isinstance(m, Gauge):
                self.gauge(name, m.help).set(m.value)
            else:
                mine = self.histogram(name, m.help, buckets=m.buckets)
                if mine.buckets != m.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket layout mismatch in merge"
                    )
                for i, c in enumerate(m.bucket_counts):
                    mine.bucket_counts[i] += c
                mine.count += m.count
                mine.sum += m.sum
                room = _RESERVOIR_CAP - len(mine._values)
                if room > 0:
                    mine._values.extend(m._values[:room])

    # ---- wire format --------------------------------------------------
    def to_wire(self) -> dict:
        """Lossless JSON-ready state, for shipping between processes.

        Unlike :meth:`to_dict` (a display snapshot), the wire form keeps
        everything :meth:`merge` needs — bucket layouts, raw bucket
        counts, and the percentile reservoir — so a registry rebuilt
        with :meth:`from_wire` merges identically to the original
        object.  This is how distributed-queue workers return their
        telemetry to the coordinator (see :mod:`repro.dist`).
        """
        out: dict[str, dict] = {}
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Counter):
                out[name] = {"type": "counter", "help": m.help, "value": m.value}
            elif isinstance(m, Gauge):
                out[name] = {"type": "gauge", "help": m.help, "value": m.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "help": m.help,
                    "buckets": list(m.buckets),
                    "bucket_counts": list(m.bucket_counts),
                    "count": m.count,
                    "sum": m.sum,
                    "values": list(m._values),
                }
        return out

    @classmethod
    def from_wire(cls, wire: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_wire` output."""
        reg = cls(enabled=True)
        for name, d in wire.items():
            kind = d.get("type")
            if kind == "counter":
                reg.counter(name, d.get("help", "")).inc(float(d["value"]))
            elif kind == "gauge":
                reg.gauge(name, d.get("help", "")).set(float(d["value"]))
            elif kind == "histogram":
                h = reg.histogram(
                    name, d.get("help", ""), buckets=tuple(d["buckets"])
                )
                h.bucket_counts = [int(c) for c in d["bucket_counts"]]
                h.count = int(d["count"])
                h.sum = float(d["sum"])
                h._values = [float(v) for v in d["values"]][:_RESERVOIR_CAP]
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
        return reg

    # ---- exposition ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot of every instrument."""
        out: dict[str, dict] = {}
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Counter):
                out[name] = {"type": "counter", "value": m.value}
            elif isinstance(m, Gauge):
                out[name] = {"type": "gauge", "value": m.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": m.count,
                    "sum": m.sum,
                    "mean": m.mean,
                    "p50": m.percentile(50),
                    "p95": m.percentile(95),
                    "p99": m.percentile(99),
                }
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, allow_nan=True)

    def to_prometheus(self) -> str:
        """OpenMetrics text exposition (also scrapeable as Prometheus 0.0.4).

        Every metric family gets a ``# TYPE`` line (and ``# HELP`` when a
        help string was registered); counter sample names carry the
        mandatory ``_total`` suffix while the family name does not; label
        values are escaped; the exposition ends with ``# EOF``.
        """
        lines: list[str] = []
        # snapshot before iterating: an exporter thread may render while
        # an engine thread registers new instruments (list() of a dict's
        # items is atomic under the GIL, plain iteration is not)
        for name, m in sorted(list(self._metrics.items())):
            pname = _sanitize(name)
            if isinstance(m, Counter):
                # OpenMetrics: the *family* is named without the _total
                # suffix; the sample carries it
                family = pname[: -len("_total")] if pname.endswith("_total") else pname
                if m.help:
                    lines.append(f"# HELP {family} {_escape_help(m.help)}")
                lines.append(f"# TYPE {family} counter")
                lines.append(f"{family}_total {m.value:g}")
            elif isinstance(m, Gauge):
                if m.help:
                    lines.append(f"# HELP {pname} {_escape_help(m.help)}")
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {m.value:g}")
            else:
                if m.help:
                    lines.append(f"# HELP {pname} {_escape_help(m.help)}")
                lines.append(f"# TYPE {pname} histogram")
                for edge, cum in m.cumulative_buckets():
                    le = "+Inf" if math.isinf(edge) else f"{edge:g}"
                    lines.append(f'{pname}_bucket{{le="{_escape_label(le)}"}} {cum}')
                lines.append(f"{pname}_sum {m.sum:g}")
                lines.append(f"{pname}_count {m.count}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


class _Span:
    """Mutable elapsed-time holder returned by :meth:`MetricsRegistry.timeit`."""

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed = 0.0
