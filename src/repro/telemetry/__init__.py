"""Runtime telemetry: structured tracing, metrics, and solver diagnostics.

The observability layer the paper's methodology is built on (AutoPerf on
the job side, LDMS on the system side) has an in-process analogue here
for *our own* engines:

* :class:`MetricsRegistry` — counters / gauges / histograms with JSON and
  Prometheus text exposition, plus a ``timeit`` span context manager;
* :class:`TraceWriter` and friends — a structured JSONL event journal of
  per-phase solver events (convergence residuals, link saturation,
  per-sample timing, packet-sim step stats);
* :class:`Telemetry` — the bundle the engines accept (explicitly, or via
  the ambient :func:`current_telemetry` installed by the CLI);
* :func:`summarize_trace` / :func:`format_summary` — the post-hoc digest
  behind ``repro-study report``.

The default is :data:`NULL_TELEMETRY`: a disabled sink whose cost is one
boolean check per instrumented span, so un-instrumented runs behave
exactly as before.  See ``docs/OBSERVABILITY.md`` for the event schema.
"""

from repro.telemetry.context import (
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
    resolve_telemetry,
    set_current_telemetry,
    use_telemetry,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.exporter import OPENMETRICS_CONTENT_TYPE, MetricsExporter
from repro.telemetry.series import (
    CadenceRecorder,
    CounterSeries,
    QuantileSketch,
    SeriesConfig,
    SeriesWindow,
)
from repro.telemetry.report import (
    ConvergenceSummary,
    DistSummary,
    TraceSummary,
    format_summary,
    order_events,
    summarize_trace,
)
from repro.telemetry.stream import (
    BusTraceWriter,
    CampaignProgress,
    EventBus,
    TraceTail,
)
from repro.telemetry.trace import (
    NULL_TRACE,
    JsonlTraceWriter,
    LoggingTraceWriter,
    MemoryTraceWriter,
    MultiTraceWriter,
    NullTraceWriter,
    TraceScan,
    TraceWriter,
    read_trace,
    scan_trace,
)

__all__ = [
    "NULL_TELEMETRY",
    "NULL_TRACE",
    "DEFAULT_BUCKETS",
    "OPENMETRICS_CONTENT_TYPE",
    "BusTraceWriter",
    "CadenceRecorder",
    "CampaignProgress",
    "ConvergenceSummary",
    "DistSummary",
    "Counter",
    "CounterSeries",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "LoggingTraceWriter",
    "MemoryTraceWriter",
    "MetricsExporter",
    "MetricsRegistry",
    "MultiTraceWriter",
    "NullTraceWriter",
    "QuantileSketch",
    "SeriesConfig",
    "SeriesWindow",
    "Telemetry",
    "TraceScan",
    "TraceSummary",
    "TraceTail",
    "TraceWriter",
    "current_telemetry",
    "format_summary",
    "order_events",
    "read_trace",
    "resolve_telemetry",
    "scan_trace",
    "set_current_telemetry",
    "summarize_trace",
    "use_telemetry",
]
