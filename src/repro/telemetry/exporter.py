"""Stdlib HTTP exporter: live ``/metrics``, ``/healthz``, and ``/runs``.

A :class:`MetricsExporter` serves the process's
:class:`~repro.telemetry.metrics.MetricsRegistry` in the OpenMetrics
text format on ``/metrics``, a trivial liveness probe on ``/healthz``,
and — when wired to a :class:`~repro.telemetry.stream.CampaignProgress`
— the campaign's live progress JSON on ``/runs``.  Pure stdlib
(``http.server`` on a daemon thread): no new dependencies, and closing
the exporter never blocks the run it observed.

Scrape safety: the registry's exposition takes an atomic snapshot of
the metric table, so a mid-run scrape sees a consistent point-in-time
view while workers keep merging.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.stream import CampaignProgress

#: the OpenMetrics content type Prometheus negotiates for
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class MetricsExporter:
    """Serves live telemetry over HTTP from a background daemon thread.

    ``registry`` may be the live object or a zero-argument provider
    (called per scrape, so a CLI can swap registries between commands).
    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.
    """

    def __init__(
        self,
        registry: MetricsRegistry | Callable[[], MetricsRegistry],
        *,
        progress: CampaignProgress | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self.progress = progress
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence per-request noise
                return

            def _send(self, code: int, body: bytes, ctype: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        text = exporter.registry().to_prometheus()
                        self._send(
                            200, text.encode("utf-8"), OPENMETRICS_CONTENT_TYPE
                        )
                    elif path == "/healthz":
                        self._send(200, b"ok\n", "text/plain; charset=utf-8")
                    elif path == "/runs":
                        prog = exporter.progress
                        body = (
                            json.dumps(prog.snapshot() if prog else None) + "\n"
                        ).encode("utf-8")
                        self._send(200, body, "application/json; charset=utf-8")
                    else:
                        self._send(
                            404, b"not found\n", "text/plain; charset=utf-8"
                        )
                except BrokenPipeError:
                    pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()

    def registry(self) -> MetricsRegistry:
        reg = self._registry
        return reg() if callable(reg) else reg

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving (idempotent); never raises."""
        try:
            self._server.shutdown()
            self._server.server_close()
            self._thread.join(timeout=5.0)
        except Exception:
            pass

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
