"""Per-router, per-tile-class cumulative counters (the Aries counter model).

Aries exposes per-tile flit and stall counters; AutoPerf reads the tiles
of the routers a job's nodes attach to (a *local* view), LDMS reads every
router once a minute (a *global* view).  Both views are served by
:class:`CounterBank`: cumulative per-router arrays per tile class, with
request/response virtual channels split out on the processor tiles, plus
snapshot/delta arithmetic so monitoring code works exactly like the
paper's collection pipeline.

Class names match the paper's figures: ``rank1``, ``rank2``, ``rank3``
network tiles; ``proc_req`` / ``proc_rsp`` processor-tile VCs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.dragonfly import DragonflyTopology, LinkClass

#: counter classes, in the order used throughout reports
TILE_CLASSES: tuple[str, ...] = ("rank1", "rank2", "rank3", "proc_req", "proc_rsp")

_NETWORK_CLASSES: tuple[str, ...] = ("rank1", "rank2", "rank3")

_LINK_TO_TILE = {
    int(LinkClass.RANK1): "rank1",
    int(LinkClass.RANK2): "rank2",
    int(LinkClass.RANK3): "rank3",
}


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of counter state at one instant.

    ``flits[cls]`` / ``stalls[cls]`` are ``(n_routers,)`` float arrays.
    Subtraction of two snapshots yields the interval delta.
    """

    flits: dict[str, np.ndarray]
    stalls: dict[str, np.ndarray]

    def __sub__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            flits={c: self.flits[c] - other.flits[c] for c in TILE_CLASSES},
            stalls={c: self.stalls[c] - other.stalls[c] for c in TILE_CLASSES},
        )

    def total_flits(self, classes: tuple[str, ...] = TILE_CLASSES) -> float:
        return float(sum(self.flits[c].sum() for c in classes))

    def total_stalls(self, classes: tuple[str, ...] = TILE_CLASSES) -> float:
        return float(sum(self.stalls[c].sum() for c in classes))

    def ratio(self, cls: str) -> np.ndarray:
        """Per-router stalls-to-flits ratio for one class (0 where idle)."""
        f = self.flits[cls]
        s = self.stalls[cls]
        return np.divide(s, f, out=np.zeros_like(s), where=f > 0)

    def class_ratio(self, cls: str) -> float:
        """System-aggregate stalls-to-flits ratio for one class."""
        f = self.flits[cls].sum()
        return float(self.stalls[cls].sum() / f) if f > 0 else 0.0

    def network_ratio(self) -> float:
        """Aggregate ratio over the 40 network tiles (paper's headline)."""
        f = sum(self.flits[c].sum() for c in _NETWORK_CLASSES)
        s = sum(self.stalls[c].sum() for c in _NETWORK_CLASSES)
        return float(s / f) if f > 0 else 0.0


class CounterBank:
    """Mutable cumulative counters for every router of a system.

    All accumulation APIs take *per-link* flit/stall arrays indexed by the
    topology's flat link ids and scatter them onto the transmit router of
    each link, by tile class.  Processor-tile traffic is split into the
    request VC (bulk data, Put-style) and the response VC (acks), per the
    paper's Fig. 6 discussion.
    """

    def __init__(self, top: DragonflyTopology) -> None:
        self.top = top
        n = top.n_routers
        self._flits = {c: np.zeros(n, dtype=np.float64) for c in TILE_CLASSES}
        self._stalls = {c: np.zeros(n, dtype=np.float64) for c in TILE_CLASSES}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all counters."""
        for c in TILE_CLASSES:
            self._flits[c][:] = 0.0
            self._stalls[c][:] = 0.0

    def add_network_link_counts(
        self,
        link_ids: np.ndarray,
        flits: np.ndarray,
        stalls: np.ndarray,
    ) -> None:
        """Accumulate flit/stall counts for rank-1/2/3 links.

        ``link_ids`` may contain processor links; they are ignored here
        (use :meth:`add_proc_counts`).
        """
        link_ids = np.asarray(link_ids)
        flits = np.asarray(flits, dtype=np.float64)
        stalls = np.asarray(stalls, dtype=np.float64)
        cls = self.top.link_class[link_ids]
        routers = self.top.link_src_router[link_ids]
        for link_cls, tile_cls in _LINK_TO_TILE.items():
            m = cls == link_cls
            if m.any():
                np.add.at(self._flits[tile_cls], routers[m], flits[m])
                np.add.at(self._stalls[tile_cls], routers[m], stalls[m])

    def add_proc_counts(
        self,
        node_ids: np.ndarray,
        req_flits: np.ndarray,
        req_stalls: np.ndarray,
        rsp_flits: np.ndarray,
        rsp_stalls: np.ndarray,
    ) -> None:
        """Accumulate processor-tile VC counts for the given nodes."""
        routers = self.top.node_router(np.asarray(node_ids))
        np.add.at(self._flits["proc_req"], routers, np.asarray(req_flits, dtype=np.float64))
        np.add.at(self._stalls["proc_req"], routers, np.asarray(req_stalls, dtype=np.float64))
        np.add.at(self._flits["proc_rsp"], routers, np.asarray(rsp_flits, dtype=np.float64))
        np.add.at(self._stalls["proc_rsp"], routers, np.asarray(rsp_stalls, dtype=np.float64))

    def merge(self, other: "CounterBank", *, fraction: float = 1.0) -> None:
        """Add ``fraction`` of another bank's cumulative counts into this one."""
        if other.top.n_routers != self.top.n_routers:
            raise ValueError("cannot merge banks from different systems")
        for c in TILE_CLASSES:
            self._flits[c] += other._flits[c] * fraction
            self._stalls[c] += other._stalls[c] * fraction

    def scale(self, factor: float) -> None:
        """Multiply all cumulative counts (e.g. per-iteration -> per-run)."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        for c in TILE_CLASSES:
            self._flits[c] *= factor
            self._stalls[c] *= factor

    # ------------------------------------------------------------------
    def snapshot(self) -> CounterSnapshot:
        """Immutable copy of the current cumulative state."""
        return CounterSnapshot(
            flits={c: self._flits[c].copy() for c in TILE_CLASSES},
            stalls={c: self._stalls[c].copy() for c in TILE_CLASSES},
        )

    def local_view(self, node_ids: np.ndarray) -> CounterSnapshot:
        """AutoPerf-style view: counters of the routers hosting ``node_ids``.

        Values for routers not hosting any of the nodes are zeroed.  As in
        the paper, multiple processes on the same router read the same
        tile values; the monitoring layer averages duplicates away.
        """
        routers = np.unique(self.top.node_router(np.asarray(node_ids)))
        mask = np.zeros(self.top.n_routers, dtype=bool)
        mask[routers] = True
        return CounterSnapshot(
            flits={c: np.where(mask, self._flits[c], 0.0) for c in TILE_CLASSES},
            stalls={c: np.where(mask, self._stalls[c], 0.0) for c in TILE_CLASSES},
        )

    def per_tile_ratio(self, cls: str) -> np.ndarray:
        """Stalls-to-flits ratio per router, normalized per physical tile.

        Flits and stalls are divided by the class's tile count before the
        ratio, matching how the paper's per-tile scatter plots are drawn.
        (The normalization cancels in the ratio; it matters for the raw
        per-tile flit/stall series.)
        """
        return self.snapshot().ratio(cls)

    def per_tile_flits(self, cls: str) -> np.ndarray:
        """Mean flits per physical tile of ``cls`` on each router."""
        return self._flits[cls] / self.top.tiles.count_for(cls)

    def per_tile_stalls(self, cls: str) -> np.ndarray:
        """Mean stalls per physical tile of ``cls`` on each router."""
        return self._stalls[cls] / self.top.tiles.count_for(cls)
