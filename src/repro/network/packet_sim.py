"""Time-stepped packet-level network simulator.

The fluid engine resolves phases to equilibrium; this engine actually
moves packets.  It exists to (a) validate the fluid solver's routing
decisions with genuinely emergent queueing on small systems, (b) run
latency microbenchmarks where per-packet dynamics matter, and (c) back
the imperative :class:`repro.mpi.api.SimComm` MPI layer.

Model
-----
* Messages are segmented into 64-byte packets queued on their source
  NIC's **injection link**.
* Every directed link is a FIFO served at its capacity (fractional
  per-step credits with a one-step burst clamp).
* When a packet is served off its injection link (i.e. enters the source
  router), the **adaptive routing decision** runs: the best minimal and
  best non-minimal candidate sub-paths of its message are scored by
  summed queue occupancy (in credit units) and compared through
  :func:`repro.core.policy.minimal_preferred` with the message's routing
  mode — the same arithmetic the fluid solver uses fractionally.
* Served packets advance to the next link of their chosen path; packets
  left waiting accrue one **stall** per step on their link, served
  packets accrue their **flits** — giving hardware-shaped counters.

Scale: the simulator is O(active packets) per step and intended for the
``toy``/``mini`` topologies and microbenchmark-sized traffic (up to ~1e5
packets); campaigns use the fluid engine.

Implementation notes (docs/PERFORMANCE.md has the full story)
-------------------------------------------------------------
Packet state lives in one preallocated capacity-doubling
structure-of-arrays block (``_ai``, one contiguous int64 row per field,
live prefix ``[:, :_n]``) instead of per-event ``np.concatenate``
growth, with swap-from-end removal when packets leave the simulation.
FIFO ranks are maintained incrementally — served packets vacate the
front of their queues and arrivals append behind the survivors — so the
per-step full ``np.lexsort`` of the naive formulation is needed only
for the queues a re-route, dead-link retransmit, or drop actually
perturbed.  Counter scatter-adds run as ``np.bincount`` kernels; every
count involved is an exact integer-valued float, so the results are
byte-identical to sequential ``np.add.at``
(``tests/test_golden_equivalence.py`` enforces this against the frozen
reference copy in ``tests/_reference_packet_sim.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.biases import RoutingMode
from repro.core.policy import minimal_preferred
from repro.faults.model import FaultSchedule
from repro.guard.context import active_guard
from repro.guard.invariants import check_packet_state
from repro.network.congestion import PACKET_BYTES, FLIT_BYTES
from repro.telemetry import Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology, LinkClass
from repro.topology.paths import MAX_HOPS
from repro.topology.pathcache import cached_minimal_paths, cached_valiant_paths

# rows of the packet-state block ``_ai`` (int64, shape (N_FIELDS, cap));
# each row is contiguous so a field's live slice is a plain view
MSG, ROW, HOP, LNK, SEQ, BIRTH, WSC, RETRY, RNK = range(9)
N_FIELDS = 9

#: "no pending activation" sentinel, far past any reachable step count
_NEVER = 1 << 62


@dataclass(frozen=True)
class PacketSimConfig:
    """Simulator tuning.

    Attributes
    ----------
    step_time:
        Seconds per simulation step.  At the default 50 ns a 5.25 GB/s
        rank-1 link serves ~4 packets per step.
    occupancy_credit_unit:
        Queued packets per credit unit when scoring candidate paths
        (hardware load estimates are coarse queue-depth buckets).
    k_min, k_nonmin:
        Candidate sub-paths per side per message.
    max_steps:
        Safety limit for :meth:`PacketSimulator.run`.
    """

    step_time: float = 50e-9
    occupancy_credit_unit: float = 4.0
    #: credit units a candidate is charged per router hop (the UGAL
    #: convention: a longer path means more downstream queue even when
    #: idle, so biased modes prefer minimal at zero load)
    hop_bias_credits: float = 0.25
    #: steps a packet may wait at its first router-output queue before the
    #: router re-runs the adaptive decision for it (Aries re-adapts while
    #: blocked; AD1's per-hop shift schedule applies at the retry).
    #: 0 disables re-routing.
    reroute_patience: int = 8
    #: times a packet stranded on a **dead** link may be retransmitted
    #: from its source NIC before it is dropped.  Independent of
    #: ``reroute_patience``: survivability retries still run when
    #: adaptive re-routing is disabled (patience 0).
    max_reroute_attempts: int = 4
    k_min: int = 2
    k_nonmin: int = 2
    max_steps: int = 200_000
    #: emit a ``packet.step`` trace event every this many steps while a
    #: trace sink is attached (0 disables the periodic events; the
    #: end-of-run ``packet.run`` summary is always emitted when tracing)
    trace_every: int = 0

    def __post_init__(self) -> None:
        if self.step_time <= 0:
            raise ValueError("step_time must be > 0")
        if self.occupancy_credit_unit <= 0:
            raise ValueError("occupancy_credit_unit must be > 0")
        if self.max_reroute_attempts < 0:
            raise ValueError("max_reroute_attempts must be >= 0")


@dataclass
class InjectionSpec:
    """One message to inject: ``src``/``dst`` node, size, mode, start step."""

    src: int
    dst: int
    nbytes: int
    mode: RoutingMode
    start_step: int = 0


@dataclass
class MessageStats:
    """Completion record for one injected message."""

    spec: InjectionSpec
    n_packets: int
    finish_step: int = -1
    min_packets: int = 0
    nonmin_packets: int = 0
    #: packets abandoned after exhausting dead-link retransmits; a
    #: message with drops still *finishes* (the sim would otherwise
    #: never drain) but is not fully delivered.
    dropped_packets: int = 0

    @property
    def done(self) -> bool:
        return self.finish_step >= 0

    @property
    def delivered(self) -> bool:
        return self.done and self.dropped_packets == 0

    def latency(self, step_time: float) -> float:
        """Message completion time in seconds (start -> last packet out)."""
        if not self.done:
            raise RuntimeError("message has not completed")
        return (self.finish_step - self.spec.start_step) * step_time


def _compact_rows(links: np.ndarray) -> np.ndarray:
    """Push the valid (>=0) entries of each row to the front, keep order."""
    order = np.argsort(links < 0, axis=1, kind="stable")
    return np.take_along_axis(links, order, axis=1)


def _occurrence_index(dest: np.ndarray) -> np.ndarray:
    """Position of each element within its equal-value group, in order.

    ``dest`` is a batch of arrival links in seq-assignment order; the
    result is each arrival's offset behind earlier same-link arrivals of
    the batch.
    """
    order = np.argsort(dest, kind="stable")
    ds = dest[order]
    n = ds.size
    ar = np.arange(n)
    ng = np.empty(n, dtype=bool)
    ng[0] = True
    np.not_equal(ds[1:], ds[:-1], out=ng[1:])
    gs = np.maximum.accumulate(np.where(ng, ar, 0))
    out = np.empty(n, dtype=np.int64)
    out[order] = ar - gs
    return out


class PacketSimulator:
    """Packet-level simulator over a dragonfly topology."""

    def __init__(
        self,
        top: DragonflyTopology,
        config: PacketSimConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
        telemetry: Telemetry | None = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        self.config = config or PacketSimConfig()
        self.rng = rng or np.random.default_rng(0)
        self.telemetry = telemetry
        c = self.config

        # Faults: ``top`` is the pristine fabric; the simulator derives
        # the degraded view itself so timed specs can flip mid-run.
        self.faults = faults if faults else None
        self._base_top = top
        if self.faults is not None:
            top = top.with_faults(self.faults, at_time=0.0)
        self.top = top
        self._fault_changes: list[float] = (
            list(self.faults.change_times()) if self.faults is not None else []
        )

        # per-link service rate, packets per step
        self._base_rate = self._base_top.capacity * c.step_time / PACKET_BYTES
        self.rate = top.capacity * c.step_time / PACKET_BYTES
        self.credit = np.zeros(top.n_links)
        self.flits = np.zeros(top.n_links)
        self.stalls = np.zeros(top.n_links)
        self._clamp = 2.0 * self.rate + 1.0  # one-step burst limit

        self.step = 0
        self._seq = 0
        #: adaptive re-route decisions re-run for blocked packets
        self.reroutes = 0
        #: packets retransmitted from their source NIC off a dead link
        self.retries = 0
        #: packets dropped after exhausting ``max_reroute_attempts``
        self.dropped = 0
        #: messages that have reached ``finish_step`` so far (maintained
        #: at completion/drop time; equals ``sum(1 for s in self.messages
        #: if s.done)`` at every step boundary)
        self.messages_done = 0

        # message bookkeeping
        self.messages: list[MessageStats] = []
        self._msg_mode: list[RoutingMode] = []
        self._cand_msg_start: list[int] = []
        #: pending activations as (start_step, message id) pairs
        self._pending: list[tuple[int, int]] = []
        self._pending_min = _NEVER

        # per-message arenas mirroring the lists above for vectorized
        # use; _msg_min/_msg_nonmin accumulate the fault-free routing
        # attribution and are mirrored into MessageStats at step end
        self._msg_cap = 0
        self._msg_remaining = np.zeros(0, dtype=np.int64)
        self._cand_start_arr = np.zeros(0, dtype=np.int64)
        self._msg_modegrp = np.zeros(0, dtype=np.int64)
        self._msg_min = np.zeros(0, dtype=np.int64)
        self._msg_nonmin = np.zeros(0, dtype=np.int64)
        self._mid_lut = np.zeros(0, dtype=np.int64)
        self._mode_registry: list[RoutingMode] = []
        self._mode_ids: dict[int, int] = {}
        self._attr_dirty = False

        # candidate paths, stacked: per message k_min minimal rows then
        # its non-minimal rows, in capacity-doubling arenas (live prefix
        # [:_cand_rows]).  _cand_safe/_cand_bias are the precomputed
        # scoring geometry: sentinel-masked link columns 1.. and the
        # hop-count bias term of each row.
        L = self.top.n_links
        self._L = L
        self._cand_rows = 0
        self._cand_links = np.zeros((0, MAX_HOPS), dtype=np.int64)
        self._cand_valid = np.zeros((0, MAX_HOPS), dtype=bool)
        self._cand_safe = np.zeros((0, MAX_HOPS - 1), dtype=np.int64)
        self._cand_bias = np.zeros(0, dtype=np.float64)

        # packet arenas (live prefix [:, :_n] / [:_n])
        self._n = 0
        self._cap = 0
        self._ai = np.zeros((N_FIELDS, 0), dtype=np.int64)
        self._a_flits = np.zeros(0, dtype=np.float64)
        self._a_drop = np.zeros(0, dtype=bool)
        self._pkt_latencies: list[np.ndarray] = []

        # incremental queue state: per-link live-packet counts, the
        # dirty-queue set whose FIFO ranks need a rebuild at step end,
        # and preallocated scratch
        self._qlen = np.zeros(L, dtype=np.int64)
        self._link_dirty = np.zeros(L, dtype=bool)
        self._any_dirty = False
        self._dropped_flagged = 0
        self._occ_scratch = np.zeros(L + 1, dtype=np.float64)
        self._budget = np.zeros(L, dtype=np.float64)
        self._inj_mask = self.top.link_class == int(LinkClass.INJECTION)
        # per-packet scratch (sized with _cap) so the serve decision
        # allocates nothing
        self._sf = np.zeros(0, dtype=np.float64)
        self._si = np.zeros(0, dtype=np.int64)
        self._sb = np.zeros(0, dtype=bool)
        #: earliest step at which a hop-1 packet could be re-route
        #: eligible; lets quiet steps skip the O(n) stuck scan entirely
        self._stuck_check_at = _NEVER

        # cadence sampling (repro.telemetry.series); created lazily in
        # run() when the telemetry bundle carries a SeriesConfig, so
        # unobserved runs pay one None-check per step and nothing else
        self._series = None
        self._series_every = 0
        self._series_next = 0
        self._series_flits = 0.0
        self._series_stalls = 0.0
        self._series_lat_idx = 0

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def _validate_spec(self, spec: InjectionSpec) -> None:
        if spec.src == spec.dst:
            raise ValueError("src and dst must differ")
        if not (0 <= spec.src < self.top.n_nodes and 0 <= spec.dst < self.top.n_nodes):
            raise ValueError("node index out of range")
        if spec.nbytes <= 0:
            raise ValueError("nbytes must be > 0")
        if spec.start_step < self.step:
            raise ValueError("start_step is in the past")

    def add_message(self, spec: InjectionSpec) -> int:
        """Register a message; returns its message id."""
        self._validate_spec(spec)
        c = self.config
        src = np.array([spec.src])
        dst = np.array([spec.dst])
        bmin = cached_minimal_paths(self.top, src, dst, k=c.k_min, rng=self.rng)
        bnon = cached_valiant_paths(self.top, src, dst, k=c.k_nonmin, rng=self.rng)
        self._n_min_cand = bmin.links.shape[0]  # same for every message
        return self._register_message(spec, bmin.links, bnon.links)

    def add_messages(self, specs: list[InjectionSpec]) -> list[int]:
        """Register a batch of messages with one path-table construction.

        Semantically equivalent to ``[add_message(s) for s in specs]``
        but builds the minimal and Valiant candidate tables for the
        whole batch in two vectorized calls instead of two per message.

        .. note::
           The bulk path consumes the simulator's RNG in a different
           order than per-message registration (all minimal detour draws
           happen before any Valiant draws), so candidate tables — and
           therefore individual run trajectories — differ from the
           per-message API at the byte level while remaining
           statistically equivalent (see docs/PERFORMANCE.md for the
           re-baseline policy).  Use :meth:`add_message` where exact
           reproducibility against existing baselines matters.
        """
        specs = list(specs)
        if not specs:
            return []
        for spec in specs:
            self._validate_spec(spec)
        c = self.config
        src = np.array([s.src for s in specs])
        dst = np.array([s.dst for s in specs])
        bmin = cached_minimal_paths(self.top, src, dst, k=c.k_min, rng=self.rng)
        bnon = cached_valiant_paths(self.top, src, dst, k=c.k_nonmin, rng=self.rng)
        # flow-major bundles: each flow's rows are contiguous
        km = bmin.links.shape[0] // len(specs)
        kn = bnon.links.shape[0] // len(specs)
        self._n_min_cand = km
        return [
            self._register_message(
                spec,
                bmin.links[i * km : (i + 1) * km],
                bnon.links[i * kn : (i + 1) * kn],
            )
            for i, spec in enumerate(specs)
        ]

    def _register_message(
        self, spec: InjectionSpec, links_min: np.ndarray, links_non: np.ndarray
    ) -> int:
        mid = len(self.messages)
        n_pkts = int(np.ceil(spec.nbytes / PACKET_BYTES))
        start_row = self._append_candidates(links_min, links_non)

        self.messages.append(MessageStats(spec=spec, n_packets=n_pkts))
        self._msg_mode.append(spec.mode)
        self._cand_msg_start.append(start_row)

        if mid >= self._msg_cap:
            new_cap = max(16, self._msg_cap * 2)
            for name in (
                "_msg_remaining",
                "_cand_start_arr",
                "_msg_modegrp",
                "_msg_min",
                "_msg_nonmin",
                "_mid_lut",
            ):
                old = getattr(self, name)
                buf = np.zeros(new_cap, dtype=np.int64)
                buf[:mid] = old[:mid]
                setattr(self, name, buf)
            self._msg_cap = new_cap
        self._msg_remaining[mid] = n_pkts
        self._cand_start_arr[mid] = start_row
        grp = self._mode_ids.get(id(spec.mode))
        if grp is None:
            grp = len(self._mode_registry)
            self._mode_registry.append(spec.mode)
            self._mode_ids[id(spec.mode)] = grp
        self._msg_modegrp[mid] = grp

        self._pending.append((spec.start_step, mid))
        if spec.start_step < self._pending_min:
            self._pending_min = spec.start_step
        return mid

    def _append_candidates(self, links_min: np.ndarray, links_non: np.ndarray) -> int:
        """Append one message's candidate rows to the arenas; returns the
        first row index."""
        km = links_min.shape[0]
        k = km + links_non.shape[0]
        r0 = self._cand_rows
        need = r0 + k
        cap = self._cand_links.shape[0]
        if need > cap:
            new_cap = max(64, cap)
            while new_cap < need:
                new_cap *= 2
            for name in ("_cand_links", "_cand_valid", "_cand_safe", "_cand_bias"):
                old = getattr(self, name)
                shape = (new_cap,) + old.shape[1:]
                buf = np.empty(shape, dtype=old.dtype)
                buf[:r0] = old[:r0]
                setattr(self, name, buf)
        block = self._cand_links[r0:need]
        block[:km] = links_min
        block[km:] = links_non
        order = np.argsort(block < 0, axis=1, kind="stable")
        block[:] = np.take_along_axis(block, order, axis=1)
        valid = block >= 0
        self._cand_valid[r0:need] = valid
        self._cand_safe[r0:need] = np.where(valid[:, 1:], block[:, 1:], self._L)
        self._cand_bias[r0:need] = self.config.hop_bias_credits * valid[:, 1:].sum(axis=1)
        self._cand_rows = need
        return r0

    def _activate_pending(self) -> None:
        """Enqueue packets of messages whose start step has arrived."""
        due = [p for p in self._pending if p[0] <= self.step]
        self._pending = [p for p in self._pending if p[0] > self.step]
        self._pending_min = min((p[0] for p in self._pending), default=_NEVER)
        for _, mid in due:
            stats = self.messages[mid]
            spec = stats.spec
            n_pkts = stats.n_packets
            tail = spec.nbytes - (n_pkts - 1) * PACKET_BYTES
            flits = np.full(n_pkts, PACKET_BYTES / FLIT_BYTES)
            flits[-1] = max(1.0, np.ceil(tail / FLIT_BYTES))
            inj = int(self.top.injection_link(spec.src))
            self._append_packets(mid, inj, flits)

    def _append_packets(self, mid: int, link: int, flits: np.ndarray) -> None:
        n_new = flits.size
        need = self._n + n_new
        if need > self._cap:
            new_cap = max(256, self._cap)
            while new_cap < need:
                new_cap *= 2
            buf = np.empty((N_FIELDS, new_cap), dtype=np.int64)
            buf[:, : self._n] = self._ai[:, : self._n]
            self._ai = buf
            for name, dtype in (("_a_flits", np.float64), ("_a_drop", np.bool_)):
                old = getattr(self, name)
                fbuf = np.empty(new_cap, dtype=dtype)
                fbuf[: self._n] = old[: self._n]
                setattr(self, name, fbuf)
            self._sf = np.empty(new_cap, dtype=np.float64)
            self._si = np.empty(new_cap, dtype=np.int64)
            self._sb = np.empty(new_cap, dtype=bool)
            self._cap = new_cap
        a, b = self._n, need
        blk = self._ai[:, a:b]
        blk[MSG] = mid
        blk[ROW] = -1
        blk[HOP] = 0
        blk[LNK] = link
        blk[SEQ] = np.arange(self._seq, self._seq + n_new, dtype=np.int64)
        self._seq += n_new
        blk[BIRTH] = self.step
        # "wait" is derived: a packet's wait count after this step's
        # increment is (step - wsince); fresh packets are waiting in the
        # step that injects them, hence the -1
        blk[WSC] = self.step - 1
        blk[RETRY] = 0
        self._a_flits[a:b] = flits
        self._a_drop[a:b] = False
        # join the back of the injection queue, in arrival order
        blk[RNK] = self._qlen[link] + np.arange(n_new, dtype=np.int64)
        self._qlen[link] += n_new
        self._n = b

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return self._n

    @property
    def idle(self) -> bool:
        return self._n == 0 and not self._pending

    def occupancy(self) -> np.ndarray:
        """Current queued-packet count per link."""
        return self._qlen.astype(np.float64)

    def advance(self) -> None:
        """Execute one simulation step."""
        if self._fault_changes and self.now >= self._fault_changes[0]:
            while self._fault_changes and self.now >= self._fault_changes[0]:
                self._fault_changes.pop(0)
            self._apply_fault_state()
        if self._pending_min <= self.step:
            self._activate_pending()
        n = self._n
        if n == 0:
            self.step += 1
            self._maybe_trace_step()
            return

        L = self._L
        ai = self._ai
        lk = ai[LNK, :n]
        rank = ai[RNK, :n]
        qlen = self._qlen
        credit = self.credit

        # replenish credits on links with waiting packets (burst-clamped)
        active = qlen > 0
        np.add(credit, self.rate, out=credit, where=active)
        np.minimum(credit, self._clamp, out=credit, where=active)
        # the first floor(credit) packets of each link's FIFO are served
        budget = np.floor(credit, out=self._budget)
        bl = np.take(budget, lk, out=self._sf[:n])
        served_m = np.less(rank, bl, out=self._sb[:n])
        sidx = served_m.nonzero()[0]
        slk = lk[sidx]
        scnt = np.bincount(slk, minlength=L)

        # account service and stalls
        if sidx.size:
            self.flits += np.bincount(slk, weights=self._a_flits[sidx], minlength=L)
            credit -= scnt
            # survivors shift toward the queue front; served entries of
            # `rank` become garbage until their packets re-queue
            rank -= np.take(scnt, lk, out=self._si[:n])
        # post-service queue depth, which is both the per-link stall
        # increment (one per still-waiting packet) and the FIFO position
        # the next arrival takes
        flen = qlen - scnt
        all_served = sidx.size == n
        if not all_served:
            self.stalls += flen

        patience = self.config.reroute_patience

        # packets stranded on a link that died mid-run can never be
        # served there: retransmit them from their source NIC (bounded
        # by max_reroute_attempts, then dropped).  This runs even with
        # reroute_patience=0 — survivability is not adaptivity.
        if self.faults is not None and not all_served:
            dead_w = ~served_m & (self.rate[lk] <= 0.0)
            if dead_w.any():
                due_m = dead_w & (ai[WSC, :n] <= self.step - max(1, patience))
                due = due_m.nonzero()[0]
                if due.size:
                    # enumerate in (link, seq) order: the retransmit seq
                    # assignment is observable through FIFO ordering
                    due = due[np.lexsort((ai[SEQ, due], lk[due]))]
                    self._retry_dead(due)

        # a packet stuck at its first router-output queue gets its
        # adaptive decision re-run (with hops_taken=1, so AD1's schedule
        # has started ramping).  This must run before the served packets
        # advance, against the queue state they still occupy.
        # _stuck_check_at is a conservative lower bound on the earliest
        # step any hop-1 packet could be eligible, so quiet steps skip
        # the scan entirely.
        if patience > 0 and not all_served and self.step >= self._stuck_check_at:
            h1 = ai[HOP, :n] == 1
            h1 &= ~served_m
            if self.faults is not None:
                h1 &= ~self._a_drop[:n]
                h1 &= self.rate[ai[LNK, :n]] > 0.0
            wsince = ai[WSC, :n]
            stuck_m = h1 & (wsince <= self.step - patience)
            stuck = stuck_m.nonzero()[0]
            if stuck.size:
                old_links = ai[LNK, stuck]
                self._route(stuck, hops_taken=1, at_hop=1)
                ai[WSC, stuck] = self.step
                self.reroutes += int(stuck.size)
                new_links = ai[LNK, stuck]
                qlen += np.bincount(new_links, minlength=L)
                qlen -= np.bincount(old_links, minlength=L)
                # old seqs land mid-queue on the new links: rebuild both
                # ends' FIFO ranks at step end
                self._link_dirty[old_links] = True
                self._link_dirty[new_links] = True
                self._any_dirty = True
                h1 &= ~stuck_m
                nxt = self.step + patience
                if h1.any():
                    nxt = min(nxt, int(wsince[h1].min()) + patience)
            else:
                nxt = int(wsince[h1].min()) + patience if h1.any() else _NEVER
            self._stuck_check_at = nxt

        ai[WSC, sidx] = self.step
        if sidx.size:
            self._advance_served(sidx, flen)
        if self._dropped_flagged:
            self._flush_drops()
        self.step += 1
        if self._any_dirty:
            self._rebuild_dirty_ranks()
        if self._attr_dirty:
            self._sync_attribution()
        self._maybe_trace_step()

    def _sync_attribution(self) -> None:
        """Mirror the vectorized routing attribution into MessageStats."""
        mn = self._msg_min
        nmn = self._msg_nonmin
        for i, st in enumerate(self.messages):
            st.min_packets = int(mn[i])
            st.nonmin_packets = int(nmn[i])
        self._attr_dirty = False

    def _apply_fault_state(self) -> None:
        """Recompute per-link rates after a timed fault/recovery edge."""
        assert self.faults is not None
        scale = self.faults.capacity_scale(self._base_top, at_time=self.now)
        new_rate = self._base_rate if scale is None else self._base_rate * scale
        newly_dead = (new_rate <= 0.0) & (self.rate > 0.0)
        recovered = (new_rate > 0.0) & (self.rate <= 0.0) & (self._base_rate > 0.0)
        self.rate = new_rate
        self._clamp = 2.0 * new_rate + 1.0
        # rate edges change which hop-1 packets are re-route eligible
        # (the dead-link exclusion): re-arm the stuck scan
        self._stuck_check_at = self.step
        if newly_dead.any():
            self.credit[newly_dead] = 0.0
        # later add_message calls should route around the current state
        self.top = self._base_top.with_faults(self.faults, at_time=self.now)
        tel = resolve_telemetry(self.telemetry)
        if tel.trace.enabled:
            tel.event(
                "packet.fault",
                step=self.step,
                t=self.now,
                links_died=int(newly_dead.sum()),
                links_recovered=int(recovered.sum()),
            )

    def _retry_dead(self, pkts: np.ndarray) -> None:
        """Retransmit packets stranded on dead links; drop repeat offenders.

        ``pkts`` are arena indices in (link, seq) order.
        """
        ai = self._ai
        ai[RETRY, pkts] += 1
        over = ai[RETRY, pkts] > self.config.max_reroute_attempts
        give_up = pkts[over]
        retry = pkts[~over]
        if give_up.size:
            self._a_drop[give_up] = True
            self._dropped_flagged += int(give_up.size)
        if retry.size == 0:
            return
        old_links = ai[LNK, retry]
        mids = ai[MSG, retry]
        for mid in np.unique(mids):
            mid = int(mid)
            sel = retry[mids == mid]
            rows = ai[ROW, sel]
            routed = rows >= 0
            if routed.any():
                # un-attribute: the packet will be re-routed from scratch
                start = self._cand_msg_start[mid]
                prev_min = rows[routed] - start < self._n_min_cand
                self.messages[mid].min_packets -= int(prev_min.sum())
                self.messages[mid].nonmin_packets -= int((~prev_min).sum())
            inj = int(self.top.injection_link(self.messages[mid].spec.src))
            ai[LNK, sel] = inj
        ai[ROW, retry] = -1
        ai[HOP, retry] = 0
        ai[WSC, retry] = self.step
        ai[SEQ, retry] = np.arange(self._seq, self._seq + retry.size, dtype=np.int64)
        self._seq += retry.size
        self.retries += int(retry.size)
        new_links = ai[LNK, retry]
        L = self._L
        self._qlen += np.bincount(new_links, minlength=L)
        self._qlen -= np.bincount(old_links, minlength=L)
        self._link_dirty[old_links] = True
        self._link_dirty[new_links] = True
        self._any_dirty = True

    def _flush_drops(self) -> None:
        """Remove packets flagged for dropping and settle their messages."""
        n = self._n
        drop = np.flatnonzero(self._a_drop[:n])
        self._dropped_flagged = 0
        if drop.size == 0:
            return
        self.dropped += int(drop.size)
        for mid, cnt in zip(*np.unique(self._ai[MSG, drop], return_counts=True)):
            mid = int(mid)
            self.messages[mid].dropped_packets += int(cnt)
            self._msg_remaining[mid] -= int(cnt)
            if self._msg_remaining[mid] == 0:
                self.messages[mid].finish_step = self.step + 1
                self.messages_done += 1
        tel = resolve_telemetry(self.telemetry)
        if tel.trace.enabled:
            tel.event("packet.drop", step=self.step, dropped=int(drop.size))
        dl = self._ai[LNK, drop]
        self._qlen -= np.bincount(dl, minlength=self._L)
        self._link_dirty[dl] = True
        self._any_dirty = True
        self._remove(drop)

    def _maybe_trace_step(self) -> None:
        """Periodic queue-state event (``trace_every`` steps apart)."""
        every = self.config.trace_every
        if every <= 0 or self.step % every:
            return
        tel = resolve_telemetry(self.telemetry)
        if not tel.trace.enabled:
            return
        occ = self.occupancy()
        tel.event(
            "packet.step",
            step=self.step,
            active_packets=self.n_active,
            pending_messages=len(self._pending),
            queued_max=float(occ.max()) if occ.size else 0.0,
            busy_links=int((occ > 0).sum()),
            stall_ratio=self.stall_to_flit_ratio(),
        )

    def _advance_served(self, sidx: np.ndarray, flen: np.ndarray) -> None:
        ai = self._ai
        L = self._L
        qlen = self._qlen
        # enumerate served packets in (link, FIFO) order — the order the
        # per-tick lexsort of the naive formulation yields, observable
        # through seq assignment and the completion-latency batches
        so = sidx[np.lexsort((ai[SEQ, sidx], ai[LNK, sidx]))]
        so_links = ai[LNK, so]
        is_inj = self._inj_mask[so_links]
        entering = so[is_inj]
        edrop = None

        # 1. packets leaving their injection link: route them now.  The
        # chosen row's first link (column 1) is where they queue next,
        # so they advance no further this step — otherwise the first
        # router-output queue would be skipped entirely and the hop-1
        # re-route window could never open.
        if entering.size:
            self._route(entering)
            # freshly routed packets sit at hop 1 from now on: they
            # become re-route eligible patience steps out
            nxt = self.step + self.config.reroute_patience
            if nxt < self._stuck_check_at:
                self._stuck_check_at = nxt
            if self.faults is not None:
                edrop = self._a_drop[entering]
            routed = entering if edrop is None or not edrop.any() else entering[~edrop]
            ai[SEQ, routed] = np.arange(
                self._seq, self._seq + routed.size, dtype=np.int64
            )
            self._seq += routed.size
            rest = so[~is_inj]
        else:
            routed = entering
            rest = so

        # all served packets vacate their queues, except entering packets
        # whose routing found no live candidate (they keep their link
        # until the end-of-step drop flush)
        qlen -= np.bincount(so_links, minlength=L)
        if edrop is not None and edrop.any():
            qlen += np.bincount(so_links[is_inj][edrop], minlength=L)

        # 2. all other served packets advance one hop along their row
        if rest.size:
            hop = ai[HOP, rest] + 1
            ncol = self._cand_links.shape[1]
            next_link = self._cand_links[ai[ROW, rest], np.minimum(hop, ncol - 1)]
            valid = (hop < ncol) & (next_link >= 0)
            moving = rest[valid]
            done = rest[~valid]
            if moving.size:
                ml = next_link[valid]
                ai[HOP, moving] = hop[valid]
                ai[LNK, moving] = ml
                ai[SEQ, moving] = np.arange(
                    self._seq, self._seq + moving.size, dtype=np.int64
                )
                self._seq += moving.size
            else:
                ml = moving
        else:
            moving = done = rest
            ml = rest

        # one combined arrival batch, in seq-assignment order (routed
        # packets took their new seqs before moving ones): each arrival
        # queues behind this step's survivors and earlier batch arrivals
        # to the same link
        nr = routed.size
        if nr or moving.size:
            dest = np.empty(nr + moving.size, dtype=np.int64)
            dest[:nr] = ai[LNK, routed]
            dest[nr:] = ml
            ranks = flen[dest] + _occurrence_index(dest)
            ai[RNK, routed] = ranks[:nr]
            ai[RNK, moving] = ranks[nr:]
            qlen += np.bincount(dest, minlength=L)

        if done.size:
            self._complete(done)
            self._remove(done)

    @staticmethod
    def _hard_decision(
        mode: RoutingMode, lm: np.ndarray, ln: np.ndarray, hops_taken: int
    ) -> np.ndarray:
        """:func:`repro.core.policy.minimal_preferred` with the scalar
        ``hops_taken`` shift resolved up front — same arithmetic, fewer
        array dispatches on the per-step path."""
        if mode.increasing:
            sched = mode.hop_shift_schedule
            shift = sched[min(hops_taken, len(sched) - 1)]
        else:
            shift = mode.shift
        return lm <= np.ldexp(ln, shift) + mode.add

    def _route(self, packets: np.ndarray, *, hops_taken: int = 0, at_hop: int = 1) -> None:
        """(Re-)run the adaptive decision for packets at the source router.

        ``at_hop`` is the path column the packets will occupy on the
        chosen row (1 right after injection; also 1 when a blocked
        packet is re-routed to a different output port of the same
        router).  ``hops_taken`` feeds AD1's per-hop shift schedule.
        """
        if self.faults is not None:
            self._route_masked(packets, hops_taken=hops_taken, at_hop=at_hop)
        else:
            self._route_batched(packets, hops_taken=hops_taken, at_hop=at_hop)

    def _route_batched(
        self, packets: np.ndarray, *, hops_taken: int, at_hop: int
    ) -> None:
        """Fault-free scoring of every affected message in one batch.

        Candidate windows are gathered as one (messages x window) score
        matrix through the sentinel-extended occupancy table; the
        per-message window is ``_n_min_cand + k_nonmin`` rows from the
        message's first candidate row, exactly as the per-message loop
        slices it (including its cross-message read of the next
        message's leading rows when a message owns fewer non-minimal
        candidates than ``k_nonmin`` — see docs/PERFORMANCE.md).
        """
        c = self.config
        L = self._L
        ai = self._ai
        M = len(self.messages)
        mids = ai[MSG, packets]
        # bincount-based unique: message ids are dense small ints, so a
        # count + scatter lookup beats np.unique's sort
        cnt = np.bincount(mids, minlength=M)
        umids = cnt.nonzero()[0]
        U = umids.size
        cnt_all = cnt[umids]
        lut = self._mid_lut
        lut[umids] = np.arange(U)
        inv = lut[mids]
        nm = self._n_min_cand
        W = nm + c.k_nonmin
        starts = self._cand_start_arr[umids]
        occ_ext = self._occ_scratch
        occ_ext[:L] = self._qlen  # == occupancy(); occ_ext[L] stays 0.0

        chosen = np.empty(U, dtype=np.int64)
        take_min_u = np.empty(U, dtype=bool)
        full = starts + W <= self._cand_rows
        fidx = full.nonzero()[0]
        if fidx.size:
            sF = starts[fidx]
            ridx = (sF[:, None] + np.arange(W)).ravel()
            s = occ_ext[self._cand_safe[ridx]].sum(axis=1)
            s /= c.occupancy_credit_unit
            s += self._cand_bias[ridx]
            S = s.reshape(fidx.size, W)
            smin = S[:, :nm]
            snon = S[:, nm:]
            bm = np.argmin(smin, axis=1)
            lm = smin.min(axis=1)
            bn = np.argmin(snon, axis=1)
            ln = snon.min(axis=1)
            if len(self._mode_registry) == 1:
                tm = self._hard_decision(self._mode_registry[0], lm, ln, hops_taken)
            else:
                tm = np.empty(fidx.size, dtype=bool)
                grp = self._msg_modegrp[umids[fidx]]
                for g in np.unique(grp):
                    gsel = grp == g
                    tm[gsel] = self._hard_decision(
                        self._mode_registry[g], lm[gsel], ln[gsel], hops_taken
                    )
            chosen[fidx] = sF + np.where(tm, bm, nm + bn)
            take_min_u[fidx] = tm
        if fidx.size < U:
            # a window truncated by the end of the candidate table (the
            # last registered message when its non-minimal candidate
            # count falls short of k_nonmin): score it exactly as the
            # per-message loop would
            occ = occ_ext[:L]
            for k in (~full).nonzero()[0]:
                mid = int(umids[k])
                start = int(starts[k])
                rows = slice(start, start + W)
                links = self._cand_links[: self._cand_rows][rows, 1:]
                validm = self._cand_valid[: self._cand_rows][rows, 1:]
                scores = (
                    np.where(validm, occ[np.where(validm, links, 0)], 0.0).sum(axis=1)
                    / c.occupancy_credit_unit
                )
                scores = scores + c.hop_bias_credits * validm.sum(axis=1)
                smin = scores[:nm]
                snon = scores[nm:]
                best_min = int(np.argmin(smin))
                best_non = int(np.argmin(snon)) + nm
                take_min = bool(
                    minimal_preferred(
                        self._msg_mode[mid], smin.min(), snon.min(), hops_taken
                    )
                )
                chosen[k] = start + (best_min if take_min else best_non)
                take_min_u[k] = take_min

        # apply the per-message decision to every affected packet; the
        # attribution lands in the _msg_min/_msg_nonmin accumulators and
        # is mirrored into MessageStats at the end of the step
        M = len(self.messages)
        row_pp = chosen[inv]
        prev_rows = ai[ROW, packets]
        rerouted = prev_rows >= 0
        if rerouted.any():
            # un-count packets that had already been attributed to a side
            prev_min = (prev_rows - self._cand_start_arr[mids]) < nm
            sel = rerouted & prev_min
            self._msg_min[:M] -= np.bincount(mids[sel], minlength=M)
            sel = rerouted & ~prev_min
            self._msg_nonmin[:M] -= np.bincount(mids[sel], minlength=M)
        self._msg_min[umids[take_min_u]] += cnt_all[take_min_u]
        self._msg_nonmin[umids[~take_min_u]] += cnt_all[~take_min_u]
        self._attr_dirty = True
        ai[ROW, packets] = row_pp
        ai[HOP, packets] = at_hop
        ai[LNK, packets] = self._cand_links[row_pp, at_hop]

    def _route_masked(
        self, packets: np.ndarray, *, hops_taken: int, at_hop: int
    ) -> None:
        """Per-message scoring under a fault mask (dead candidate rows
        are ruled out; messages with no surviving row drop their
        packets).  Rare enough to keep the reference per-message shape."""
        ai = self._ai
        occ = self.occupancy()
        unit = self.config.occupancy_credit_unit
        dead = self.rate <= 0.0
        mids = ai[MSG, packets]
        cl = self._cand_links[: self._cand_rows]
        cv = self._cand_valid[: self._cand_rows]
        # score every candidate row of the affected messages
        for mid in np.unique(mids):
            start = self._cand_msg_start[mid]
            n_cand = self._n_min_cand + self.config.k_nonmin
            # a message's rows: k_min minimal then k_nonmin non-minimal;
            # skip the injection link (position 0) when scoring.
            rows = slice(start, start + n_cand)
            links = cl[rows, 1:]
            validm = cv[rows, 1:]
            scores = np.where(validm, occ[np.where(validm, links, 0)], 0.0).sum(axis=1) / unit
            scores = scores + self.config.hop_bias_credits * validm.sum(axis=1)
            # a row crossing a dead link can never drain: rule it out
            row_dead = (validm & dead[np.where(validm, links, 0)]).any(axis=1)
            if row_dead.all():
                # no surviving candidate at all — drop these packets
                sel = packets[mids == mid]
                self._a_drop[sel] = True
                self._dropped_flagged += int(sel.size)
                continue
            scores = np.where(row_dead, np.inf, scores)
            smin = scores[: self._n_min_cand]
            snon = scores[self._n_min_cand :]
            best_min = int(np.argmin(smin))
            best_non = int(np.argmin(snon)) + self._n_min_cand
            mode = self._msg_mode[mid]
            if not np.isfinite(smin.min()):
                take_min = False
            elif not np.isfinite(snon.min()):
                take_min = True
            else:
                take_min = bool(
                    minimal_preferred(mode, smin.min(), snon.min(), hops_taken)
                )
            row = start + (best_min if take_min else best_non)
            sel = packets[mids == mid]
            rerouted = ai[ROW, sel] >= 0
            # un-count packets that had already been attributed to a side
            if rerouted.any():
                prev_min = ai[ROW, sel[rerouted]] - start < self._n_min_cand
                self.messages[mid].min_packets -= int(prev_min.sum())
                self.messages[mid].nonmin_packets -= int((~prev_min).sum())
            ai[ROW, sel] = row
            ai[HOP, sel] = at_hop
            ai[LNK, sel] = cl[row, at_hop]
            if take_min:
                self.messages[mid].min_packets += sel.size
            else:
                self.messages[mid].nonmin_packets += sel.size

    def _complete(self, done: np.ndarray) -> None:
        ai = self._ai
        lat = ((self.step + 1) - ai[BIRTH, done]).astype(np.float64)
        lat *= self.config.step_time
        self._pkt_latencies.append(lat)
        M = len(self.messages)
        cnts = np.bincount(ai[MSG, done], minlength=M)
        rem = self._msg_remaining
        rem[:M] -= cnts
        fin = ((rem[:M] == 0) & (cnts > 0)).nonzero()[0]
        for mid in fin:
            self.messages[int(mid)].finish_step = self.step + 1
            self.messages_done += 1

    def _remove(self, idx: np.ndarray) -> None:
        """Drop arena columns ``idx``, filling holes from the live tail."""
        k = idx.size
        if k == 0:
            return
        new_n = self._n - k
        in_tail = idx >= new_n
        holes = idx[~in_tail]
        if holes.size:
            keep_tail = np.ones(k, dtype=bool)
            keep_tail[idx[in_tail] - new_n] = False
            src = new_n + keep_tail.nonzero()[0]
            self._ai[:, holes] = self._ai[:, src]
            self._a_flits[holes] = self._a_flits[src]
            self._a_drop[holes] = self._a_drop[src]
        self._n = new_n

    def _rebuild_dirty_ranks(self) -> None:
        """Recompute FIFO ranks of the queues perturbed this step."""
        n = self._n
        dirty = self._link_dirty
        if n:
            lk = self._ai[LNK, :n]
            sel = dirty[lk].nonzero()[0]
            if sel.size:
                sl = lk[sel]
                order = np.lexsort((self._ai[SEQ, sel], sl))
                ss = sl[order]
                ng = np.ones(ss.size, dtype=bool)
                ng[1:] = ss[1:] != ss[:-1]
                gs = np.maximum.accumulate(np.where(ng, np.arange(ss.size), 0))
                self._ai[RNK, sel[order]] = np.arange(ss.size) - gs
        dirty[:] = False
        self._any_dirty = False

    # ------------------------------------------------------------------
    def run(self, *, max_steps: int | None = None) -> int:
        """Step until idle (or the step limit); returns steps executed."""
        limit = max_steps if max_steps is not None else self.config.max_steps
        start = self.step
        tel = resolve_telemetry(self.telemetry)
        # None unless a GuardPolicy is active; the unguarded loop pays
        # one None-check per step and nothing else
        guard = active_guard()
        trace_steps = self.config.trace_every > 0 and tel.trace.enabled
        can_skip = guard is None and not self._fault_changes and not trace_steps
        if tel.series is not None and self._series is None:
            self._series_init(tel.series)
        # idle fast-forward stays legal with sampling on: counters do
        # not move while the arena is empty, so the catch-up sample
        # after the jump emits the same (empty) windows step-by-step
        # execution would
        rec = self._series
        t0 = time.perf_counter() if tel.enabled else 0.0
        while not self.idle:
            if self.step - start >= limit:
                raise RuntimeError(
                    f"packet simulation did not drain within {limit} steps "
                    f"({self.n_active} packets active)"
                )
            if self._n == 0 and can_skip:
                # idle stretch: nothing can happen until the earliest
                # pending activation, so take it in closed form (capped
                # at the step limit so overruns still raise above)
                target = min(self._pending_min, start + limit)
                if target > self.step:
                    self.step = target
                    continue
            self.advance()
            if rec is not None and self.step >= self._series_next:
                self._sample_series(rec)
            if guard is not None:
                guard.tick_steps(1, where="packet.run")
                if guard.check_invariants and (self.step - start) % 64 == 0:
                    check_packet_state(guard, self)
        steps = self.step - start
        if guard is not None and guard.check_invariants and steps:
            check_packet_state(guard, self)
        if tel.enabled:
            wall = time.perf_counter() - t0
            step_wall = wall / steps if steps else 0.0
            m = tel.metrics
            if m.enabled:
                m.counter("packet_steps_total", "packet-sim steps executed").inc(steps)
                m.counter(
                    "packet_messages_total", "messages drained by packet-sim runs"
                ).inc(self.messages_done)
                m.histogram("packet_run_seconds", "wall time per packet-sim run").observe(
                    wall
                )
                if steps:
                    m.histogram(
                        "engine_step_seconds", "mean wall time per packet-sim step"
                    ).observe(step_wall)
                if self.dropped:
                    m.counter(
                        "packet_drops_total", "packets dropped on dead links"
                    ).inc(self.dropped)
            tel.event(
                "packet.run",
                steps=steps,
                sim_time_s=self.now,
                messages=len(self.messages),
                messages_done=self.messages_done,
                flits=float(self.flits.sum()),
                stalls=float(self.stalls.sum()),
                stall_ratio=self.stall_to_flit_ratio(),
                reroutes=self.reroutes,
                retries=self.retries,
                dropped=self.dropped,
                wall_ms=wall * 1e3,
                step_us=step_wall * 1e6,
            )
        return steps

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.step * self.config.step_time

    # ------------------------------------------------------------------
    # cadence sampling (sim-time keyed; never touches a wall clock)
    # ------------------------------------------------------------------
    def _series_init(self, cfg) -> None:
        from repro.telemetry.series import CadenceRecorder

        self._series = CadenceRecorder(cfg)
        self._series_every = max(1, int(round(cfg.cadence / self.config.step_time)))
        self._series_next = self.step + self._series_every
        self._series_flits = float(self.flits.sum())
        self._series_stalls = float(self.stalls.sum())
        self._series_lat_idx = 0

    def _sample_series(self, rec) -> None:
        """Record flit/stall deltas and new packet latencies at ``now``."""
        f = float(self.flits.sum())
        s = float(self.stalls.sum())
        rec.add(self.now, f - self._series_flits, s - self._series_stalls)
        self._series_flits = f
        self._series_stalls = s
        chunks = self._pkt_latencies
        for arr in chunks[self._series_lat_idx :]:
            rec.observe_latency(arr)
        self._series_lat_idx = len(chunks)
        while self._series_next <= self.step:
            self._series_next += self._series_every

    def counter_series(self):
        """Finalize and return the run's cadence series.

        ``None`` when the run was not sampled (no
        :class:`~repro.telemetry.series.SeriesConfig` on the telemetry
        bundle).  Idempotent after the first call.
        """
        rec = self._series
        if rec is None:
            return None
        if rec.result is None:
            self._sample_series(rec)
            rec.finalize(
                self.now, float(self.flits.sum()), float(self.stalls.sum())
            )
        return rec.result

    def packet_latencies(self) -> np.ndarray:
        """Latencies (seconds) of all completed packets."""
        if not self._pkt_latencies:
            return np.zeros(0)
        return np.concatenate(self._pkt_latencies)

    def stall_to_flit_ratio(self) -> float:
        """Aggregate network stalls-to-flits ratio observed so far."""
        cls = self.top.link_class
        net = cls <= int(LinkClass.RANK3)
        f = self.flits[net].sum()
        return float(self.stalls[net].sum() / f) if f > 0 else 0.0
