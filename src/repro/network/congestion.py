"""Utilization -> congestion response functions shared by both engines.

The Aries counters the paper analyzes are **flits** (units of useful
traffic) and **stalls** (cycles a tile spent blocked waiting for credits).
We model the stall count of a link as an M/M/1-shaped function of its
utilization: negligible when lightly loaded, superlinear as the link
saturates.  The same queueing curve drives small-message latency
inflation, and a backpressure term inflates flit counts when demand
exceeds capacity (packet retransmission / backpressure re-injection — the
effect behind HACC's flit growth under AD3 in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import KiB, US

#: Aries network flit payload, bytes.  Counter "flits" are loads / this.
FLIT_BYTES: int = 16

#: maximum packet payload, bytes; messages are segmented into packets.
PACKET_BYTES: int = 64


@dataclass(frozen=True)
class CongestionModel:
    """Calibration of the congestion response.

    Attributes
    ----------
    stall_kappa:
        Scale of the stalls-to-flits ratio curve.  Calibrated so network
        tiles show ratios in the 0-10 range of the paper's Figs. 6/11 at
        production-like utilizations.
    stall_cap:
        Upper bound on the per-link stalls-to-flits ratio (hardware
        counters saturate; extreme incast is throttled by the NIC).
    util_cap:
        Utilization ceiling used inside the queueing formulas to keep
        them finite (demand above capacity is expressed through
        :meth:`backpressure_factor` instead).
    buffer_bytes:
        Per-link buffering used to convert utilization into queueing
        delay (per-tile VC buffers; a full 8 KiB buffer on a 5.25 GB/s
        link drains in ~1.5 us, so congested 5-7 hop paths inflate small
        messages by tens of microseconds and saturated ones by hundreds,
        bracketing the paper's P99-P99.99 production latencies).
    backpressure_beta:
        Flit-inflation slope once raw demand utilization exceeds
        ``backpressure_onset`` (retransmissions / re-injections).
    """

    stall_kappa: float = 3.0
    stall_cap: float = 12.0
    util_cap: float = 0.97
    buffer_bytes: float = 32 * KiB
    queue_delay_cap_factor: float = 12.0
    backpressure_onset: float = 0.85
    backpressure_beta: float = 1.2
    backpressure_cap: float = 2.5
    #: how strongly downstream path congestion reflects back onto the
    #: source NIC's request-VC stalls (credit backpressure reaching the
    #: processor tiles)
    backpressure_inj_coupling: float = 0.5

    def stall_ratio(self, util: np.ndarray) -> np.ndarray:
        """Stalls per flit on a link at utilization ``util``.

        ``kappa * u^2 / (1 - u)``, capped — the standard M/M/1 waiting
        shape: ~0 for u < 0.3, O(1) around u ~ 0.6, large near saturation.
        """
        u = np.clip(np.asarray(util, dtype=np.float64), 0.0, self.util_cap)
        ratio = self.stall_kappa * u * u / (1.0 - u)
        return np.minimum(ratio, self.stall_cap)

    def queue_delay(self, util: np.ndarray, capacity: np.ndarray) -> np.ndarray:
        """Expected per-link queueing delay (seconds) at ``util``.

        The fully-occupied-buffer drain time ``buffer_bytes / capacity``
        scaled by the same M/M/1 shape, capped at
        ``queue_delay_cap_factor`` drain times.  On a 5.25 GB/s Aries
        link a full 64 KiB buffer drains in ~12.5 us, so a 5-hop path
        near saturation contributes the hundreds of microseconds the
        paper's P99.9+ latencies show (Section V-D).
        """
        u = np.clip(np.asarray(util, dtype=np.float64), 0.0, self.util_cap)
        capacity = np.asarray(capacity, dtype=np.float64)
        drain = np.where(capacity > 0, self.buffer_bytes / np.maximum(capacity, 1.0), 0.0)
        shape = u * u / (1.0 - u)
        return drain * np.minimum(shape, self.queue_delay_cap_factor)

    def backpressure_factor(self, raw_util: np.ndarray) -> np.ndarray:
        """Flit inflation factor for raw (uncapped) demand utilization.

        1.0 until ``backpressure_onset``; above it, each unit of excess
        demand re-injects ``backpressure_beta`` extra flits, capped.
        """
        u = np.asarray(raw_util, dtype=np.float64)
        excess = np.maximum(u - self.backpressure_onset, 0.0)
        return np.minimum(1.0 + self.backpressure_beta * excess, self.backpressure_cap)


@dataclass(frozen=True)
class LatencyModel:
    """Base (uncongested) latency components for small messages.

    Values follow published Aries/XC measurements: ~1.2-1.5 us end-to-end
    software+NIC latency for small MPI messages on KNL, plus ~100 ns per
    router hop.
    """

    software_overhead: float = 1.3 * US
    per_hop: float = 0.1 * US

    def base_latency(self, router_hops: np.ndarray) -> np.ndarray:
        """Zero-load latency of a message over ``router_hops`` hops."""
        return self.software_overhead + self.per_hop * np.asarray(router_hops, dtype=np.float64)
