"""Network congestion engines and Aries counter models.

Two engines share the topology and bias arithmetic:

* :mod:`~repro.network.fluid` — a vectorized fluid (rate-equilibrium)
  model used for campaign-scale experiments: flows split between minimal
  and non-minimal path sets under the biased comparison, link loads are
  iterated to a fixed point, and per-flow completion times, latency
  inflation, and tile counters fall out.
* :mod:`~repro.network.packet_sim` — a time-stepped packet-level
  simulator with per-output-port FIFO queues and per-hop adaptive
  decisions, used for small-scale validation and latency microbenchmarks.

:mod:`~repro.network.congestion` holds the shared utilization -> stalls /
queueing-delay / backpressure functions; :mod:`~repro.network.counters`
the per-router per-tile-class counter bank mirroring Aries hardware
counters.
"""

from repro.network.congestion import CongestionModel, FLIT_BYTES, PACKET_BYTES
from repro.network.counters import CounterBank, CounterSnapshot, TILE_CLASSES
from repro.network.fluid import FlowSet, FluidParams, FluidResult, solve_fluid
from repro.network.packet_sim import PacketSimulator, PacketSimConfig, InjectionSpec

__all__ = [
    "CongestionModel",
    "FLIT_BYTES",
    "PACKET_BYTES",
    "CounterBank",
    "CounterSnapshot",
    "TILE_CLASSES",
    "FlowSet",
    "FluidParams",
    "FluidResult",
    "solve_fluid",
    "PacketSimulator",
    "PacketSimConfig",
    "InjectionSpec",
]
