"""Campaign ↔ queue-manifest serialization and content-addressed tasks.

A distributed campaign must be rebuildable *identically* on any host
from the queue directory alone — the manifest is the wire form of
``(topology, CampaignConfig, telemetry settings)``.  Everything in it is
plain JSON; objects are reduced to the registry names and scalar
parameters their constructors round-trip from:

* topology: ``asdict(DragonflyParams)`` + structural seed (the same pair
  :class:`repro.parallel.spec.TopologySpec` rebuilds from);
* application: its registry name (:func:`repro.apps.app_by_name`);
* routing modes: registry names (:func:`repro.core.biases.mode_by_name`);
* faults: the original ``FaultSchedule.parse`` text plus its seed
  (``describe()`` output is *not* re-parseable, so schedules built
  programmatically without a parse source cannot be distributed);
* guard: ``asdict(GuardPolicy)`` — workers rewrite ``bundle_dir`` to the
  queue's shared ``bundles/`` so diagnostics from any host land where
  the coordinator can see them.

Task ids are content-addressed over the campaign fingerprint plus the
run's RNG key (see :func:`repro.dist.queue.task_id`), so a worker with a
*different* campaign pointed at the same directory can never have its
results mistaken for ours.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.apps import app_by_name
from repro.core.biases import mode_by_name
from repro.core.experiment import CampaignConfig, campaign_fingerprint
from repro.dist.queue import QueueTask, task_id
from repro.faults import FaultSchedule
from repro.guard import GuardPolicy
from repro.telemetry import Telemetry
from repro.telemetry.series import SeriesConfig
from repro.topology.dragonfly import DragonflyParams, DragonflyTopology


class NotDistributable(ValueError):
    """The campaign holds state that cannot be rebuilt from a manifest."""


def campaign_to_manifest(
    top: DragonflyTopology, cfg: CampaignConfig, tel: Telemetry
) -> dict:
    """The JSON-safe wire form of a campaign (raises NotDistributable)."""
    if cfg.params is not None:
        raise NotDistributable(
            "campaigns with custom FluidParams cannot be distributed"
        )
    if cfg.faults is not None and cfg.faults.source is None:
        raise NotDistributable(
            "campaigns with a programmatic FaultSchedule (no parse source) "
            "cannot be distributed; build the schedule with FaultSchedule.parse"
        )
    return {
        "fingerprint": campaign_fingerprint(top, cfg),
        "topology": {"params": asdict(top.params), "seed": top.seed},
        "config": {
            "app": cfg.app.name,
            "n_nodes": cfg.n_nodes,
            "modes": [m.name for m in cfg.modes],
            "samples": cfg.samples,
            "placement": cfg.placement,
            "background": cfg.background,
            "seed": cfg.seed,
            "scenario_pool": cfg.scenario_pool,
            "uniform_env": cfg.uniform_env,
            "max_attempts": cfg.max_attempts,
            "retry_backoff": cfg.retry_backoff,
            "faults": (
                {"source": cfg.faults.source, "seed": cfg.faults.seed}
                if cfg.faults is not None
                else None
            ),
            "guard": asdict(cfg.guard) if cfg.guard is not None else None,
        },
        "telemetry": {
            "trace": tel.trace.enabled,
            "metrics": tel.metrics.enabled,
            "series": asdict(tel.series) if tel.series is not None else None,
        },
    }


def manifest_to_campaign(
    manifest: dict, *, bundle_dir: str | None = None
) -> tuple[DragonflyTopology, CampaignConfig]:
    """Rebuild the identical ``(topology, config)`` pair on any host.

    ``bundle_dir`` overrides the guard policy's bundle directory (the
    worker points it at the queue's shared ``bundles/``); ``None`` keeps
    whatever the coordinator serialized.
    """
    t = manifest["topology"]
    top = DragonflyTopology(DragonflyParams(**t["params"]), seed=int(t["seed"]))
    c = manifest["config"]
    faults = None
    if c.get("faults") is not None:
        faults = FaultSchedule.parse(
            c["faults"]["source"], seed=int(c["faults"]["seed"])
        )
    guard = None
    if c.get("guard") is not None:
        g = dict(c["guard"])
        if bundle_dir is not None and g.get("bundle_dir") is not None:
            g["bundle_dir"] = bundle_dir
        guard = GuardPolicy(**g)
    cfg = CampaignConfig(
        app=app_by_name(c["app"])(),
        n_nodes=int(c["n_nodes"]),
        modes=tuple(mode_by_name(m) for m in c["modes"]),
        samples=int(c["samples"]),
        placement=c["placement"],
        background=c["background"],
        seed=int(c["seed"]),
        scenario_pool=int(c["scenario_pool"]),
        uniform_env=bool(c["uniform_env"]),
        max_attempts=int(c["max_attempts"]),
        retry_backoff=float(c["retry_backoff"]),
        faults=faults,
        guard=guard,
    )
    rebuilt = campaign_fingerprint(top, cfg)
    if rebuilt != manifest["fingerprint"]:
        raise ValueError(
            "manifest fingerprint mismatch after rebuild: "
            f"{rebuilt} != {manifest['fingerprint']}"
        )
    return top, cfg


def manifest_series(manifest: dict) -> SeriesConfig | None:
    """The coordinator's cadence-sampling opt-in, as workers must honor it."""
    s = manifest.get("telemetry", {}).get("series")
    return SeriesConfig(**s) if s is not None else None


def build_tasks(top: DragonflyTopology, cfg: CampaignConfig) -> list[QueueTask]:
    """Every run of the campaign, in canonical (sample-major) order."""
    fp = campaign_fingerprint(top, cfg)
    tasks: list[QueueTask] = []
    for i in range(cfg.samples):
        for mode in cfg.modes:
            tasks.append(
                QueueTask(
                    tid=task_id(fp, i, mode.name),
                    index=len(tasks),
                    sample=i,
                    mode=mode.name,
                )
            )
    return tasks
