"""Crash-tolerant shared-directory work queue: leases, commits, status.

The queue is a directory on a filesystem every participant can reach
(NFS, Lustre, or plain local disk for tests).  There is **no server**
and **no new dependency** — coordination rides entirely on three POSIX
primitives that are atomic even on shared filesystems:

* ``open(..., O_CREAT | O_EXCL)`` — exactly one claimer wins a lease;
* ``os.rename`` / ``os.replace`` — readers see either the old complete
  file or the new complete file, never a torn one;
* ``os.link`` — exactly one result commit wins (first-commit-wins).

Layout under the queue root::

    manifest.json        what the campaign is (atomic write by the
                         coordinator; workers wait for it to appear)
    tasks/<tid>.json     one record per pending run (content-addressed:
                         the id hashes the config fingerprint + RNG key)
    leases/<tid>.lease   a live claim: owner, token, attempt, expires_at
    attempts/<tid>.json  monotone claim counter (drives the retry budget)
    results/<tid>.json   a committed result — complete or absent, never
                         partial (written to tmp/, fsynced, then linked)
    tmp/                 in-flight scratch; corrupt or orphaned files
                         here are invisible to every reader
    bundles/             remote diagnostics bundles from guard-killed
                         runs on any host
    heartbeats/          one ``<owner>.hb`` liveness file per busy
                         worker (mtime refreshed by guard ticks;
                         surfaced by ``repro queue-status``)

State machine per task, derived purely from which files exist:
*available* (task, no unexpired lease, no result) → *claimed* (live
lease) → *done* (result).  A worker SIGKILLed at any instant leaves
either nothing (lease expires, task is reclaimed) or a complete result.

Leases carry wall-clock expiry stamps, so hosts must agree on time to
roughly a lease-TTL (``repro doctor --queue`` checks for skew).  An
expired lease is reclaimed by *renaming it away* — only one renamer can
win — then re-claiming through the same O_EXCL gate as a fresh claim.

Every public method that touches the directory translates ``OSError``
into :class:`QueueUnavailable` so callers can park-and-retry through
NFS blips and full disks instead of crashing.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.chaos.failpoints import failpoint

MANIFEST_NAME = "manifest.json"
_KIND = "repro-dist-queue"
_VERSION = 1

#: default seconds a lease lives without renewal
DEFAULT_TTL = 30.0
#: default distinct claims allowed per task before it is written off
DEFAULT_RETRY_BUDGET = 3


class QueueUnavailable(RuntimeError):
    """The shared queue directory cannot be reached right now.

    Wraps the underlying ``OSError`` (NFS blip, ENOSPC, unmounted
    path).  Transient by contract: workers park with backoff and retry;
    the coordinator keeps merging whatever it already has.
    """

    def __init__(self, op: str, exc: OSError) -> None:
        super().__init__(f"queue {op} failed: {exc}")
        self.op = op
        self.errno = exc.errno


def task_id(fingerprint: dict, sample: int, mode: str) -> str:
    """Content-addressed task identity: config fingerprint + RNG key.

    Two campaigns with identical fingerprints produce identical task
    ids, so a re-created queue directory dedupes against surviving
    results, and a result can always be traced back to the exact
    ``(config, sample, mode)`` that produced it.
    """
    key = {"config": fingerprint, "rng_key": {"sample": sample, "mode": mode}}
    return hashlib.sha256(
        json.dumps(key, sort_keys=True).encode()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class QueueTask:
    """One schedulable run: canonical index plus its identity."""

    tid: str
    index: int
    sample: int
    mode: str

    def to_dict(self) -> dict:
        return {
            "tid": self.tid,
            "index": self.index,
            "sample": self.sample,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QueueTask":
        return cls(
            tid=str(d["tid"]),
            index=int(d["index"]),
            sample=int(d["sample"]),
            mode=str(d["mode"]),
        )


@dataclass
class Lease:
    """A live claim on one task (worker-side view)."""

    tid: str
    owner: str
    token: str
    attempt: int
    claimed_at: float
    expires_at: float
    #: True when this claim reclaimed an expired lease (a retry)
    reclaimed: bool = False
    #: set when a renewal discovers the lease was stolen from us
    lost: bool = field(default=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "tid": self.tid,
            "owner": self.owner,
            "token": self.token,
            "attempt": self.attempt,
            "claimed_at": self.claimed_at,
            "expires_at": self.expires_at,
        }


@dataclass
class QueueStatus:
    """A point-in-time scan of the queue (``repro queue-status``)."""

    total: int = 0
    done: int = 0
    claimed: int = 0
    expired: int = 0
    available: int = 0
    #: live + expired lease payloads, by task id
    leases: dict[str, dict] = field(default_factory=dict)
    #: owner -> most recent lease activity wall-stamp
    workers: dict[str, float] = field(default_factory=dict)
    #: task ids whose attempts hit the retry budget
    exhausted: list[str] = field(default_factory=list)

    @property
    def pending(self) -> int:
        return self.total - self.done


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so renames survive power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class WorkQueue:
    """One campaign's shared-directory queue (see the module docstring).

    ``now`` is injectable for lease-expiry tests; everything else uses
    the real filesystem — the protocol *is* the filesystem.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        ttl: float = DEFAULT_TTL,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        now: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl!r}")
        if retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1, got {retry_budget!r}")
        self.root = Path(root)
        self.ttl = float(ttl)
        self.retry_budget = int(retry_budget)
        self._now = now
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.attempts_dir = self.root / "attempts"
        self.results_dir = self.root / "results"
        self.tmp_dir = self.root / "tmp"
        self.bundles_dir = self.root / "bundles"
        self.heartbeats_dir = self.root / "heartbeats"
        self.manifest_path = self.root / MANIFEST_NAME

    # ------------------------------------------------------------------
    # low-level atomic file helpers
    # ------------------------------------------------------------------
    def _write_json_atomic(self, path: Path, payload: dict, *, op: str) -> None:
        """tmp-write + fsync + rename: readers never see a torn file."""
        tmp = self.tmp_dir / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            with open(tmp, "w") as f:
                f.write(json.dumps(payload) + "\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
            _fsync_dir(path.parent)
        except OSError as exc:
            raise QueueUnavailable(op, exc) from exc
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _read_json(self, path: Path) -> dict | None:
        """Parse one JSON file; None when absent or torn mid-write.

        A torn/empty file can only be a reader racing a non-atomic
        writer on a filesystem without rename atomicity — treat it as
        not-there-yet rather than corrupt.
        """
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise QueueUnavailable(f"read {path.name}", exc) from exc
        try:
            d = json.loads(text)
        except json.JSONDecodeError:
            return None
        return d if isinstance(d, dict) else None

    # ------------------------------------------------------------------
    # coordinator side: create / inspect
    # ------------------------------------------------------------------
    def create(self, manifest: dict, tasks: list[QueueTask]) -> None:
        """Materialize the queue: directories, task records, manifest.

        The manifest is written **last** (atomically), so a worker that
        sees it can trust every task record is already in place.
        Re-creating an existing queue is idempotent for identical task
        sets — surviving results keep their first-commit-wins status.
        """
        try:
            for d in (
                self.root,
                self.tasks_dir,
                self.leases_dir,
                self.attempts_dir,
                self.results_dir,
                self.tmp_dir,
                self.bundles_dir,
                self.heartbeats_dir,
            ):
                d.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise QueueUnavailable("create", exc) from exc
        for t in tasks:
            self._write_json_atomic(
                self.tasks_dir / f"{t.tid}.json", t.to_dict(), op="write task"
            )
        payload = {
            "kind": _KIND,
            "version": _VERSION,
            "ttl": self.ttl,
            "retry_budget": self.retry_budget,
            "tasks": [t.to_dict() for t in tasks],
            **manifest,
        }
        self._write_json_atomic(self.manifest_path, payload, op="write manifest")

    def load_manifest(self) -> dict | None:
        """The manifest payload, or None while the coordinator hasn't run."""
        d = self._read_json(self.manifest_path)
        if d is None:
            return None
        if d.get("kind") != _KIND or d.get("version") != _VERSION:
            raise ValueError(
                f"{self.manifest_path} is not a version-{_VERSION} repro queue"
            )
        return d

    def manifest_tasks(self, manifest: dict) -> list[QueueTask]:
        return [QueueTask.from_dict(d) for d in manifest.get("tasks", [])]

    # ------------------------------------------------------------------
    # worker side: claim / renew / release
    # ------------------------------------------------------------------
    def _lease_path(self, tid: str) -> Path:
        return self.leases_dir / f"{tid}.lease"

    def _attempt_info(self, tid: str) -> dict:
        d = self._read_json(self.attempts_dir / f"{tid}.json")
        return d if isinstance(d, dict) else {}

    def _attempt_count(self, tid: str) -> int:
        d = self._attempt_info(tid)
        return int(d["attempt"]) if "attempt" in d else 0

    def _record_attempt(
        self, tid: str, attempt: int, victim: str | None = None
    ) -> None:
        # a reclaim records the owner it displaced; other writes (fresh
        # claims, budget bookkeeping) preserve the last recorded one so
        # the coordinator can attribute the retry deterministically
        if victim is None:
            victim = self._attempt_info(tid).get("victim") or None
        payload: dict = {"attempt": attempt}
        if victim:
            payload["victim"] = victim
        self._write_json_atomic(
            self.attempts_dir / f"{tid}.json",
            payload,
            op="record attempt",
        )

    def attempts_used(self, tid: str) -> int:
        """Distinct claims this task has consumed so far."""
        return self._attempt_count(tid)

    def last_victim(self, tid: str) -> str:
        """Owner displaced by the task's most recent reclaim ("" if none)."""
        return str(self._attempt_info(tid).get("victim", "") or "")

    def exhausted(self, tid: str) -> bool:
        """True once the task has burned its whole retry budget."""
        return self._attempt_count(tid) >= self.retry_budget

    def _create_lease(
        self,
        tid: str,
        owner: str,
        attempt: int,
        *,
        reclaimed: bool,
        victim: str | None = None,
    ) -> Lease | None:
        """The O_EXCL gate every claim (fresh or reclaim) goes through."""
        path = self._lease_path(tid)
        now = self._now()
        lease = Lease(
            tid=tid,
            owner=owner,
            token=uuid.uuid4().hex,
            attempt=attempt,
            claimed_at=now,
            expires_at=now + self.ttl,
            reclaimed=reclaimed,
        )
        try:
            failpoint("queue.lease.claim", path=path)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        except OSError as exc:
            raise QueueUnavailable("claim", exc) from exc
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(lease.to_dict()) + "\n")
                f.flush()
                os.fsync(f.fileno())
        except OSError as exc:
            raise QueueUnavailable("claim", exc) from exc
        self._record_attempt(tid, attempt, victim=victim)
        return lease

    def try_claim(self, tid: str, owner: str) -> Lease | None:
        """Claim ``tid`` if it is available; None if raced or leased.

        Handles both the fresh-task path (no lease file) and the
        reclaim path (expired lease renamed away, attempt incremented).
        Never claims a task that already has a result or an exhausted
        retry budget.
        """
        if self.has_result(tid):
            return None
        lease_path = self._lease_path(tid)
        cur = self._read_json(lease_path)
        if cur is None:
            # fresh claim — but re-check existence: _read_json returns
            # None for a mid-write torn file too, and stealing a torn
            # *live* lease would be wrong.  O_EXCL arbitrates anyway.
            attempt = self._attempt_count(tid) + 1
            if attempt > self.retry_budget:
                return None
            return self._create_lease(tid, owner, attempt, reclaimed=attempt > 1)
        if float(cur.get("expires_at", 0.0)) > self._now():
            return None  # live lease
        # expired: rename it away — exactly one reclaimer wins the rename
        grave = self.tmp_dir / f".{tid}.expired.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            os.rename(lease_path, grave)
        except FileNotFoundError:
            return None  # another reclaimer won (or the owner released)
        except OSError as exc:
            raise QueueUnavailable("reclaim", exc) from exc
        try:
            os.unlink(grave)
        except OSError:
            pass
        victim = str(cur.get("owner", "") or "") or None
        attempt = max(self._attempt_count(tid), int(cur.get("attempt", 1))) + 1
        if attempt > self.retry_budget:
            self._record_attempt(tid, attempt, victim=victim)
            return None
        return self._create_lease(tid, owner, attempt, reclaimed=True, victim=victim)

    def renew(self, lease: Lease) -> bool:
        """Extend the TTL; False (and ``lease.lost``) if it was stolen."""
        try:
            failpoint("queue.lease.renew", path=self._lease_path(lease.tid))
        except OSError as exc:
            raise QueueUnavailable("renew lease", exc) from exc
        cur = self._read_json(self._lease_path(lease.tid))
        if cur is None or cur.get("token") != lease.token:
            lease.lost = True
            return False
        lease.expires_at = self._now() + self.ttl
        self._write_json_atomic(
            self._lease_path(lease.tid), lease.to_dict(), op="renew lease"
        )
        return True

    def release(self, lease: Lease) -> None:
        """Drop a lease we own (after commit, or on graceful abandon)."""
        cur = self._read_json(self._lease_path(lease.tid))
        if cur is not None and cur.get("token") == lease.token:
            try:
                os.unlink(self._lease_path(lease.tid))
            except OSError:
                pass

    # ------------------------------------------------------------------
    # results: atomic, first-commit-wins
    # ------------------------------------------------------------------
    def _result_path(self, tid: str) -> Path:
        return self.results_dir / f"{tid}.json"

    def has_result(self, tid: str) -> bool:
        try:
            return self._result_path(tid).exists()
        except OSError as exc:
            raise QueueUnavailable("stat result", exc) from exc

    def commit_result(self, tid: str, payload: dict) -> bool:
        """Commit one complete result; True iff this commit won.

        Write-then-link: the payload lands completely in ``tmp/`` (with
        an fsync) before a hard link publishes it, so a SIGKILL at any
        instant leaves either nothing visible or a complete record.
        ``os.link`` fails on an existing target, which is exactly
        first-commit-wins — a speculative duplicate of a deterministic
        run loses gracefully.  Filesystems without hard links fall back
        to ``os.replace`` (last-wins, but duplicates are byte-identical
        by construction so nothing observable changes).
        """
        tmp = self.tmp_dir / f".{tid}.{os.getpid()}.{uuid.uuid4().hex[:8]}.json"
        final = self._result_path(tid)
        text = json.dumps(payload) + "\n"
        try:
            with open(tmp, "w") as f:
                f.write(text)
                f.flush()
                failpoint("queue.commit.post_tmp", path=tmp, data=text)
                os.fsync(f.fileno())
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise QueueUnavailable("write result", exc) from exc
        try:
            failpoint("queue.commit.link", path=final, data=text)
            os.link(tmp, final)
            won = True
        except FileExistsError:
            won = False
        except OSError as exc:
            if exc.errno not in (errno.EPERM, errno.EOPNOTSUPP, errno.ENOTSUP):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise QueueUnavailable("commit result", exc) from exc
            won = not final.exists()
            try:
                os.replace(tmp, final)
            except OSError as exc2:
                raise QueueUnavailable("commit result", exc2) from exc2
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        _fsync_dir(self.results_dir)
        return won

    def read_result(self, tid: str) -> dict | None:
        """A committed result payload (complete by construction), or None."""
        return self._read_json(self._result_path(tid))

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def live_leases(self) -> dict[str, dict]:
        """tid -> lease payload for every *unexpired* lease."""
        return {
            tid: d
            for tid, d in self._all_leases().items()
            if float(d.get("expires_at", 0.0)) > self._now()
        }

    def expired_leases(self) -> dict[str, dict]:
        """tid -> lease payload for leases past their TTL (crash debris)."""
        return {
            tid: d
            for tid, d in self._all_leases().items()
            if float(d.get("expires_at", 0.0)) <= self._now()
        }

    def _all_leases(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        try:
            names = os.listdir(self.leases_dir)
        except FileNotFoundError:
            return out
        except OSError as exc:
            raise QueueUnavailable("list leases", exc) from exc
        for name in sorted(names):
            if not name.endswith(".lease"):
                continue
            d = self._read_json(self.leases_dir / name)
            if d is not None:
                out[name[: -len(".lease")]] = d
        return out

    def status(self, tasks: list[QueueTask] | None = None) -> QueueStatus:
        """One consistent-enough scan for dashboards and preflights."""
        if tasks is None:
            manifest = self.load_manifest()
            tasks = self.manifest_tasks(manifest) if manifest else []
        st = QueueStatus(total=len(tasks))
        leases = self._all_leases()
        now = self._now()
        try:
            done_names = {
                n[: -len(".json")]
                for n in os.listdir(self.results_dir)
                if n.endswith(".json")
            }
        except FileNotFoundError:
            done_names = set()
        except OSError as exc:
            raise QueueUnavailable("list results", exc) from exc
        for t in tasks:
            lease = leases.get(t.tid)
            if lease is not None:
                st.leases[t.tid] = lease
                owner = str(lease.get("owner", "?"))
                st.workers[owner] = max(
                    st.workers.get(owner, 0.0),
                    float(lease.get("claimed_at", 0.0)),
                )
            if t.tid in done_names:
                st.done += 1
            elif lease is not None and float(lease.get("expires_at", 0)) > now:
                st.claimed += 1
            elif self.exhausted(t.tid):
                st.exhausted.append(t.tid)
            elif lease is not None:
                st.expired += 1
            else:
                st.available += 1
        return st
