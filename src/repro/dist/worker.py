"""The distributed campaign worker: claim → execute → commit, forever.

``repro worker --queue DIR`` runs one of these per host (or several).
The loop is deliberately stateless between tasks — everything a run
needs is re-derived from the manifest, so a worker can be SIGKILLed at
any instant and a fresh one (on any host) picks up where it left off:

* **claim**: scan the manifest's tasks in canonical order; claim the
  first one that has no result and no live lease (O_EXCL arbitration).
  Expired leases are reclaimed through the same call — the queue
  increments the attempt counter, and tasks whose retry budget is
  exhausted are skipped (the coordinator writes their error records).
* **execute**: rebuild ``(topology, config)`` from the manifest and run
  :func:`repro.core.experiment.execute_run` — the identical unit the
  serial loop and fork pool run, deriving the run's RNG stream from the
  same key, so the produced record is byte-for-byte the serial one.
  A renewal thread re-stamps the lease every ``ttl/3``; if renewal
  discovers the lease was stolen, the run finishes anyway and the
  commit races — first-commit-wins makes the loser harmless.
* **commit**: the complete result payload (record + trace events +
  metrics wire) lands via write-tmp → fsync → link.
* **speculate**: when nothing is claimable but live leases remain (the
  campaign tail), re-execute the *oldest* in-flight task without taking
  its lease.  Determinism makes the duplicate byte-identical; the dedup
  is the commit itself.
* **park**: any ``QueueUnavailable`` (NFS blip, disk full) backs the
  worker off under the shared jittered-backoff schedule and resumes —
  losing the queue directory is a pause, not a crash.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass

from repro.chaos.failpoints import failpoint
from repro.core import checkpoint as ckpt
from repro.core.experiment import execute_run, resolve_scenarios, sample_draws
from repro.dist.manifest import manifest_series, manifest_to_campaign
from repro.dist.queue import Lease, QueueTask, QueueUnavailable, WorkQueue
from repro.guard import WorkerHeartbeat, set_worker_heartbeat
from repro.telemetry import (
    MemoryTraceWriter,
    MetricsRegistry,
    NULL_TRACE,
    Telemetry,
)
from repro.util.backoff import Backoff, BackoffPolicy

#: park/retry schedule for queue outages and claim contention
WORKER_BACKOFF = BackoffPolicy(base=0.2, cap=15.0)


def default_owner() -> str:
    """This worker's identity in leases and results: ``host:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class WorkerStats:
    """What one worker did over its lifetime (``repro worker`` summary)."""

    executed: int = 0
    committed: int = 0
    duplicates: int = 0
    reclaims: int = 0
    speculated: int = 0
    lost_leases: int = 0
    parks: int = 0

    def to_dict(self) -> dict:
        return {
            "executed": self.executed,
            "committed": self.committed,
            "duplicates": self.duplicates,
            "reclaims": self.reclaims,
            "speculated": self.speculated,
            "lost_leases": self.lost_leases,
            "parks": self.parks,
        }


class _LeaseRenewer:
    """Daemon thread re-stamping one lease every ``ttl/3`` seconds."""

    def __init__(self, queue: WorkQueue, lease: Lease) -> None:
        self.queue = queue
        self.lease = lease
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-lease-renew", daemon=True
        )

    def _run(self) -> None:
        interval = self.queue.ttl / 3.0
        while not self._stop.wait(interval):
            try:
                if not self.queue.renew(self.lease):
                    return  # stolen: stop renewing, let the commit race
            except QueueUnavailable:
                # the outage also stalls every would-be stealer's clock
                # source? no — but the run keeps going; if the lease
                # expires meanwhile the commit race still settles it
                continue

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=self.queue.ttl)


class DistWorker:
    """One claim-execute-commit loop over a shared queue directory."""

    def __init__(
        self,
        queue: WorkQueue,
        *,
        owner: str | None = None,
        max_tasks: int | None = None,
        max_seconds: float | None = None,
        speculate: bool = True,
        poll: float = 0.2,
        backoff: Backoff | None = None,
        on_event=None,
    ) -> None:
        self.queue = queue
        self.owner = owner or default_owner()
        self.max_tasks = max_tasks
        self.max_seconds = max_seconds
        self.speculate = speculate
        self.poll = poll
        self.backoff = backoff if backoff is not None else Backoff(WORKER_BACKOFF)
        self.on_event = on_event or (lambda name, **f: None)
        self.stats = WorkerStats()
        self._deadline: float | None = None
        # prepared once the manifest appears
        self._ready = False
        self._top = None
        self._run_top = None
        self._cfg = None
        self._bm = None
        self._scenarios = None
        self._modes: dict = {}
        self._series = None
        self._trace_enabled = False
        self._metrics_enabled = False
        self._tasks: list[QueueTask] = []
        self._sample_cache: dict[int, tuple] = {}
        self._speculated: set[str] = set()
        self._hb: WorkerHeartbeat | None = None

    # ------------------------------------------------------------------
    def _expired(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    def _park(self, attempt: int) -> None:
        """Queue outage: back off (jittered, capped) and try again."""
        self.stats.parks += 1
        self.on_event("worker.park", owner=self.owner, attempt=attempt)
        self.backoff.sleep(min(attempt, 8))

    def _prepare(self) -> bool:
        """Load the manifest and rebuild the campaign; False while absent."""
        manifest = self.queue.load_manifest()
        if manifest is None:
            return False
        top, cfg = manifest_to_campaign(
            manifest, bundle_dir=str(self.queue.bundles_dir)
        )
        self._top = top
        self._cfg = cfg
        self._run_top = (
            top.with_faults(cfg.faults) if cfg.faults is not None else top
        )
        self._bm, self._scenarios = resolve_scenarios(top, cfg, None, None)
        self._modes = {m.name: m for m in cfg.modes}
        self._series = manifest_series(manifest)
        t = manifest.get("telemetry", {})
        self._trace_enabled = bool(t.get("trace", False))
        self._metrics_enabled = bool(t.get("metrics", False))
        self._tasks = self.queue.manifest_tasks(manifest)
        self.queue.ttl = float(manifest.get("ttl", self.queue.ttl))
        self.queue.retry_budget = int(
            manifest.get("retry_budget", self.queue.retry_budget)
        )
        # owner-named liveness file in the queue's shared heartbeats/:
        # guard ticks inside the engines refresh its mtime, so
        # ``repro queue-status`` on any host can see who is alive and
        # who went silent mid-run (old queues may predate the dir)
        try:
            self.queue.heartbeats_dir.mkdir(parents=True, exist_ok=True)
            self._hb = WorkerHeartbeat(self.queue.heartbeats_dir, name=self.owner)
            set_worker_heartbeat(self._hb)
        except OSError:
            self._hb = None
        self._ready = True
        return True

    # ------------------------------------------------------------------
    def _execute(self, task: QueueTask, *, speculative: bool, attempt: int) -> dict:
        """Run one task and build its (complete) result payload."""
        draws = self._sample_cache.get(task.sample)
        if draws is None:
            draws = sample_draws(
                self._top, self._cfg, task.sample, self._bm, self._scenarios
            )
            if len(self._sample_cache) >= 4:
                self._sample_cache.pop(next(iter(self._sample_cache)))
            self._sample_cache[task.sample] = draws
        nodes, bg, intensity = draws
        tel = Telemetry(
            trace=MemoryTraceWriter() if self._trace_enabled else NULL_TRACE,
            metrics=MetricsRegistry(enabled=self._metrics_enabled),
            series=self._series,
        )
        try:
            failpoint(
                "worker.heartbeat",
                path=None if self._hb is None else self._hb.path,
            )
        except OSError:
            pass  # a heartbeat is advisory; losing it never fails the run
        if self._hb is not None:
            self._hb.start_task()
        try:
            rec = execute_run(
                self._top,
                self._run_top,
                self._cfg,
                task.sample,
                self._modes[task.mode],
                nodes,
                bg,
                intensity,
                tel,
            )
        finally:
            if self._hb is not None:
                self._hb.end_task()
        self.stats.executed += 1
        return {
            "tid": task.tid,
            "index": task.index,
            "record": ckpt.record_to_dict(rec),
            "events": tel.trace.events if self._trace_enabled else [],
            "metrics": tel.metrics.to_wire() if self._metrics_enabled else None,
            "worker": self.owner,
            "attempt": attempt,
            "speculative": speculative,
        }

    def _commit(self, task: QueueTask, payload: dict, *, speculative: bool) -> None:
        won = self.queue.commit_result(task.tid, payload)
        if won:
            self.stats.committed += 1
            if speculative:
                self.stats.speculated += 1
        else:
            self.stats.duplicates += 1
        self.on_event(
            "worker.commit",
            owner=self.owner,
            tid=task.tid,
            index=task.index,
            won=won,
            speculative=speculative,
        )

    def _run_leased(self, task: QueueTask, lease: Lease) -> None:
        if lease.reclaimed:
            self.stats.reclaims += 1
        try:
            with _LeaseRenewer(self.queue, lease):
                payload = self._execute(
                    task, speculative=False, attempt=lease.attempt
                )
            if lease.lost:
                self.stats.lost_leases += 1
                self.on_event("worker.lost_lease", owner=self.owner, tid=task.tid)
            self._commit(task, payload, speculative=False)
        finally:
            try:
                self.queue.release(lease)
            except QueueUnavailable:
                pass  # the lease will simply expire

    def _claim_next(self) -> tuple[QueueTask, Lease] | None:
        """First claimable task in canonical order, or None."""
        for task in self._tasks:
            if self.queue.has_result(task.tid) or self.queue.exhausted(task.tid):
                continue
            lease = self.queue.try_claim(task.tid, self.owner)
            if lease is not None:
                return task, lease
        return None

    def _speculation_target(self) -> QueueTask | None:
        """The oldest in-flight task worth duplicating, if we're at the tail.

        Speculation is gated to the campaign tail: every unfinished task
        is claimed by someone else (nothing claimable), so this worker's
        only way to help is to race a straggler.  Each task is speculated
        at most once per worker.
        """
        if not self.speculate:
            return None
        live = self.queue.live_leases()
        best: QueueTask | None = None
        best_age = float("-inf")
        for task in self._tasks:
            if self.queue.has_result(task.tid):
                continue
            lease = live.get(task.tid)
            if lease is None:
                return None  # unclaimed work exists: not the tail
            if lease.get("owner") == self.owner or task.tid in self._speculated:
                continue
            age = -float(lease.get("claimed_at", 0.0))
            if age > best_age:
                best, best_age = task, age
        return best

    def _all_done(self) -> bool:
        return all(
            self.queue.has_result(t.tid) or self.queue.exhausted(t.tid)
            for t in self._tasks
        )

    # ------------------------------------------------------------------
    def run(self) -> WorkerStats:
        """The worker loop; returns when the campaign is complete (or
        ``max_tasks`` / ``max_seconds`` is hit)."""
        if self.max_seconds is not None:
            self._deadline = time.monotonic() + self.max_seconds
        outage = 0
        while not self._expired():
            try:
                if not self._ready:
                    if not self._prepare():
                        time.sleep(self.poll)
                        continue
                    self.on_event(
                        "worker.start", owner=self.owner, tasks=len(self._tasks)
                    )
                if self.max_tasks is not None and self.stats.executed >= self.max_tasks:
                    break
                claimed = self._claim_next()
                if claimed is not None:
                    outage = 0
                    self._run_leased(*claimed)
                    continue
                if self._all_done():
                    break
                target = self._speculation_target()
                if target is not None:
                    self._speculated.add(target.tid)
                    self.on_event(
                        "worker.speculate", owner=self.owner, tid=target.tid
                    )
                    payload = self._execute(target, speculative=True, attempt=0)
                    self._commit(target, payload, speculative=True)
                    continue
                time.sleep(self.poll)
            except QueueUnavailable:
                outage += 1
                self._park(outage)
            else:
                outage = 0
        self.on_event("worker.exit", owner=self.owner, **self.stats.to_dict())
        return self.stats
