"""Distributed campaign coordinator: materialize, merge, fall back.

:func:`run_campaign_distributed` is the queue-backed twin of
:func:`repro.core.experiment.run_campaign` and
:func:`repro.parallel.campaign.run_campaign_parallel`, with the same
contract: the returned records, the checkpoint file, and the telemetry
stream are **byte-identical** to a serial run, no matter how many
workers participate, on how many hosts, or how many of them crash.

The machinery is split in two so other executors (the memoizing
service layer, :mod:`repro.service.executor`) can fan an arbitrary
subset of a campaign's runs through the queue:

* :class:`DistDispatcher` owns the queue protocol: it materializes the
  queue (manifest + one content-addressed task per run), sweeps
  ``results/`` for committed payloads, writes error records for tasks
  whose retry budget is exhausted, watches fleet liveness, and degrades
  to the local fork pool when nobody is working and nobody is coming.
  It executes nothing itself (until fallback) and yields each task's
  payload exactly once, in discovery order.
* :class:`_Merger` folds yielded payloads back in canonical order:
  checkpoint append, worker trace events (tagged with a dense worker id
  and the run index, exactly like the fork-pool merge), and
  metrics-registry merge keyed by run index.

Observability: ``dist.worker`` (first sighting of each worker),
``dist.task_stolen`` (a speculative duplicate won), ``dist.lease_reclaimed``
(a retry attempt), ``dist.queue`` (periodic depth snapshot),
``dist.fallback`` — plus ``dist_*`` gauges/counters on ``/metrics``.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core import checkpoint as ckpt
from repro.core.experiment import (
    CampaignConfig,
    RunRecord,
    _effective_jobs,
    _error_record,
    emit_campaign_end,
    emit_campaign_start,
    prepare_checkpoint,
    resolve_scenarios,
    sample_draws,
)
from repro.dist.manifest import build_tasks, campaign_to_manifest
from repro.dist.queue import QueueTask, QueueUnavailable, WorkQueue
from repro.scheduler.background import BackgroundModel, BackgroundScenario
from repro.scheduler.placement import groups_spanned
from repro.telemetry import MetricsRegistry, Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology
from repro.util.backoff import Backoff, BackoffPolicy

#: queue-outage schedule on the coordinator side
COORDINATOR_BACKOFF = BackoffPolicy(base=0.2, cap=10.0)

#: seconds of (no progress ∧ no live lease) before local fallback
DEFAULT_FALLBACK_AFTER = 10.0


class _Merger:
    """Canonical-order fold of result payloads (the fork-pool merge,
    speaking the queue's wire format)."""

    def __init__(
        self,
        tel: Telemetry,
        tasks: list[QueueTask],
        slots: list[RunRecord | None],
        checkpoint_path: str | None,
        worker_ids: dict[str, int] | None = None,
    ) -> None:
        self.tel = tel
        self.tasks = tasks
        self.slots = slots
        self.checkpoint_path = checkpoint_path
        self.buffered: dict[int, dict] = {}
        self.flush_pos = 0
        self.worker_ids = worker_ids if worker_ids is not None else {}
        self.merged_tids: set[str] = set()

    @property
    def done(self) -> bool:
        return self.flush_pos >= len(self.tasks)

    def offer(self, tid: str, payload: dict) -> bool:
        """Buffer one result payload; True if it was new."""
        if tid in self.merged_tids:
            return False
        self.merged_tids.add(tid)
        self.buffered[int(payload["index"])] = payload
        return True

    def worker_id(self, owner: str) -> int:
        return self.worker_ids.setdefault(owner, len(self.worker_ids))

    def flush(self) -> int:
        """Commit the contiguous completed prefix; returns runs merged."""
        merged = 0
        while self.flush_pos < len(self.tasks):
            payload = self.buffered.pop(self.tasks[self.flush_pos].index, None)
            if payload is None:
                return merged
            rec = ckpt.record_from_dict(payload["record"])
            self.slots[int(payload["index"])] = rec
            if self.checkpoint_path is not None:
                ckpt.append_record(self.checkpoint_path, rec)
            events = payload.get("events") or []
            if events:
                wid = self.worker_id(str(payload.get("worker", "?")))
                for ev in events:
                    fields = {k: v for k, v in ev.items() if k != "ev"}
                    fields["worker"] = wid
                    fields["run_index"] = int(payload["index"])
                    self.tel.trace.emit(ev["ev"], **fields)
            wire = payload.get("metrics")
            if wire is not None and self.tel.metrics.enabled:
                self.tel.metrics.merge(
                    MetricsRegistry.from_wire(wire), tag=int(payload["index"])
                )
            self.flush_pos += 1
            merged += 1
        return merged


def _local_fallback(
    top: DragonflyTopology,
    run_top: DragonflyTopology,
    cfg: CampaignConfig,
    bm: BackgroundModel | None,
    scenarios: list[BackgroundScenario] | None,
    tel: Telemetry,
    queue: WorkQueue,
    remaining: list[QueueTask],
    jobs: int,
) -> list[tuple[str, dict]]:
    """Execute ``remaining`` on a local fork pool, committing via the queue.

    Reuses the parallel path's worker context and task runner verbatim,
    so fallback runs are produced by exactly the machinery the
    equivalence suite already proves serial-identical.  Results go
    *through the queue* (first-commit-wins), so a worker fleet that
    resurrects mid-fallback cannot double-merge anything.
    """
    from repro.parallel.campaign import (
        _CampaignContext,
        _init_worker,
        _run_task,
    )
    from repro.parallel.executor import run_tasks
    from repro.parallel.spec import RunTask

    ctx = _CampaignContext(
        top,
        run_top,
        cfg,
        bm,
        scenarios,
        trace_enabled=tel.trace.enabled,
        metrics_enabled=tel.metrics.enabled,
        series=tel.series,
    )
    by_index = {t.index: t for t in remaining}
    run_tasks_list = [
        RunTask(index=t.index, sample=t.sample, mode=t.mode) for t in remaining
    ]
    produced: list[tuple[str, dict]] = []
    for outcome in run_tasks(
        run_tasks_list,
        _run_task,
        jobs=jobs,
        initializer=_init_worker,
        initargs=(ctx,),
    ):
        task = by_index[outcome.task.index]
        if outcome.ok:
            tr = outcome.result
            payload = {
                "tid": task.tid,
                "index": tr.index,
                "record": ckpt.record_to_dict(tr.record),
                "events": tr.events,
                "metrics": tr.metrics.to_wire() if tr.metrics is not None else None,
                "worker": "coordinator:fallback",
                "attempt": outcome.attempts,
                "speculative": False,
            }
        else:
            # the local worker process died repeatedly on this run:
            # isolate into an error record, as the fork pool does
            nodes, _, intensity = sample_draws(top, cfg, task.sample, bm, scenarios)
            mode = {m.name: m for m in cfg.modes}[task.mode]
            rec = _error_record(
                cfg,
                mode,
                task.sample,
                groups_spanned(top, nodes),
                intensity,
                outcome.error,
                outcome.attempts,
            )
            payload = {
                "tid": task.tid,
                "index": task.index,
                "record": ckpt.record_to_dict(rec),
                "events": [],
                "metrics": None,
                "worker": "coordinator:fallback",
                "attempt": outcome.attempts,
                "speculative": False,
            }
        produced.append((task.tid, payload))
        try:
            queue.commit_result(task.tid, payload)
        except QueueUnavailable:
            # the queue died under the coordinator too; the caller
            # receives ``produced`` in-memory, so the campaign still
            # completes
            pass
    return produced


class DistDispatcher:
    """The queue protocol side of a distributed campaign (no merging).

    :meth:`run` materializes the queue for ``tasks`` and yields each
    task's committed result payload exactly once, in discovery order;
    the caller owns canonical ordering, checkpointing, and telemetry
    merging.  ``worker_ids`` may be shared with the caller's merger so
    ``dist.worker`` sightings and trace tags agree on dense ids.
    """

    def __init__(
        self,
        top: DragonflyTopology,
        run_top: DragonflyTopology,
        cfg: CampaignConfig,
        bm: BackgroundModel | None,
        scenarios: list[BackgroundScenario] | None,
        tel: Telemetry,
        queue: WorkQueue,
        tasks: list[QueueTask],
        *,
        jobs: int | None = None,
        fallback_after: float = DEFAULT_FALLBACK_AFTER,
        poll: float = 0.2,
        status_every: float = 5.0,
        worker_ids: dict[str, int] | None = None,
    ) -> None:
        self.top = top
        self.run_top = run_top
        self.cfg = cfg
        self.bm = bm
        self.scenarios = scenarios
        self.tel = tel
        self.queue = queue
        self.tasks = tasks
        self.jobs = jobs
        self.fallback_after = fallback_after
        self.poll = poll
        self.status_every = status_every
        self.worker_ids = worker_ids if worker_ids is not None else {}

    def worker_id(self, owner: str) -> int:
        return self.worker_ids.setdefault(owner, len(self.worker_ids))

    def run(self) -> Iterator[tuple[QueueTask, dict]]:
        tel = self.tel
        queue = self.queue
        cfg = self.cfg
        mode_by_name = {m.name: m for m in cfg.modes}

        manifest = campaign_to_manifest(self.top, cfg, tel)
        queue.create(manifest, self.tasks)

        m = tel.metrics
        if m.enabled:
            m.gauge("dist_queue_depth", "tasks not yet completed").set(
                len(self.tasks)
            )
            m.gauge("dist_leases_live", "live worker leases").set(0)

        backoff = Backoff(COORDINATOR_BACKOFF)
        outage = 0
        last_progress = time.monotonic()
        last_status = 0.0
        seen_attempts: dict[str, int] = {}
        #: last owner observed holding each task's lease (steal attribution)
        last_owner: dict[str, str] = {}
        yielded: set[str] = set()
        fallen_back = False

        def _sight_worker(owner: str) -> None:
            if owner not in self.worker_ids:
                tel.event("dist.worker", owner=owner, worker=self.worker_id(owner))

        def _note_attempts(t: QueueTask, used: int) -> None:
            """Record attempt movement; >1 means an expired lease got
            reclaimed somewhere (a retry)."""
            prev = seen_attempts.get(t.tid, 0)
            if used > max(prev, 1):
                # the queue records the displaced owner at reclaim time;
                # the lease-scan guess is only a fallback (our scan may
                # already have seen the reclaimer's fresh lease)
                tel.event(
                    "dist.lease_reclaimed",
                    tid=t.tid,
                    run_index=t.index,
                    attempt=used,
                    victim=queue.last_victim(t.tid) or last_owner.get(t.tid, ""),
                )
                if m.enabled:
                    m.counter("dist_retries_total", "expired-lease reclaims").inc(
                        used - max(prev, 1)
                    )
            if used > prev:
                seen_attempts[t.tid] = used

        while len(yielded) < len(self.tasks):
            progressed = 0
            try:
                # 0) lease scan: first-sighting events + steal attribution
                live = queue.live_leases()
                for tid, lease in live.items():
                    owner = str(lease.get("owner", "?"))
                    _sight_worker(owner)
                    last_owner[tid] = owner

                # 1) sweep newly committed results
                for t in self.tasks:
                    if t.tid in yielded:
                        continue
                    payload = queue.read_result(t.tid)
                    if payload is None:
                        continue
                    owner = str(payload.get("worker", "?"))
                    _sight_worker(owner)
                    if payload.get("speculative"):
                        tel.event(
                            "dist.task_stolen",
                            tid=t.tid,
                            run_index=t.index,
                            owner=owner,
                            victim=last_owner.get(t.tid, ""),
                        )
                        if m.enabled:
                            m.counter(
                                "dist_steals_total",
                                "speculative duplicates that won",
                            ).inc()
                    # the payload's attempt count is authoritative even when
                    # the whole claim→reclaim→commit happened between two of
                    # our sweeps (the attempts scan below never sees it)
                    _note_attempts(t, int(payload.get("attempt", 0) or 0))
                    yielded.add(t.tid)
                    progressed += 1
                    yield t, payload

                # 2) retry bookkeeping: attempt counters that moved past 1
                #    mean an expired lease got reclaimed somewhere
                for t in self.tasks:
                    if t.tid in yielded:
                        continue
                    used = queue.attempts_used(t.tid)
                    _note_attempts(t, used)
                    # budget exhausted with no result: the task is dead —
                    # write its error record so the campaign completes
                    if used >= queue.retry_budget and not queue.has_result(t.tid):
                        if t.tid in live:
                            continue  # final attempt still running
                        nodes, _, intensity = sample_draws(
                            self.top, cfg, t.sample, self.bm, self.scenarios
                        )
                        rec = _error_record(
                            cfg,
                            mode_by_name[t.mode],
                            t.sample,
                            groups_spanned(self.top, nodes),
                            intensity,
                            RuntimeError(
                                f"retry budget exhausted after {used} attempts"
                            ),
                            used,
                        )
                        payload = {
                            "tid": t.tid,
                            "index": t.index,
                            "record": ckpt.record_to_dict(rec),
                            "events": [],
                            "metrics": None,
                            "worker": "coordinator",
                            "attempt": used,
                            "speculative": False,
                        }
                        queue.commit_result(t.tid, payload)
                        tel.event(
                            "dist.task_exhausted",
                            tid=t.tid,
                            run_index=t.index,
                            attempts=used,
                        )

                if m.enabled:
                    m.gauge("dist_queue_depth", "tasks not yet completed").set(
                        len(self.tasks) - len(yielded)
                    )
                    m.gauge("dist_leases_live", "live worker leases").set(len(live))
                now = time.monotonic()
                if now - last_status >= self.status_every:
                    last_status = now
                    tel.event(
                        "dist.queue",
                        depth=len(self.tasks) - len(yielded),
                        merged=len(yielded),
                        total=len(self.tasks),
                        leases=len(live),
                        workers=len(self.worker_ids),
                    )

                if progressed or live:
                    last_progress = now
                elif (
                    not fallen_back
                    and len(yielded) < len(self.tasks)
                    and now - last_progress >= self.fallback_after
                ):
                    # nobody is working and nobody is coming: degrade to
                    # the local fork pool and finish the campaign ourselves
                    fallen_back = True
                    remaining = [t for t in self.tasks if t.tid not in yielded]
                    tel.event(
                        "dist.fallback",
                        remaining=len(remaining),
                        waited_s=round(now - last_progress, 3),
                    )
                    produced = _local_fallback(
                        self.top,
                        self.run_top,
                        cfg,
                        self.bm,
                        self.scenarios,
                        tel,
                        queue,
                        remaining,
                        _effective_jobs(self.jobs),
                    )
                    # yield in-memory too: the campaign must finish even
                    # if the queue directory died outright (records are
                    # deterministic, so any queue-committed duplicate from
                    # a resurrected worker is byte-identical to ours)
                    by_tid = {t.tid: t for t in remaining}
                    for tid, payload in produced:
                        if tid in yielded:
                            continue
                        yielded.add(tid)
                        yield by_tid[tid], payload
                    last_progress = time.monotonic()
                    continue  # next sweep skips everything yielded
                outage = 0
                if len(yielded) < len(self.tasks) and not progressed:
                    time.sleep(self.poll)
            except QueueUnavailable:
                outage += 1
                tel.event("dist.queue_unavailable", outages=outage)
                backoff.sleep(min(outage, 8))


def run_campaign_distributed(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    *,
    queue_dir: str,
    background_model: BackgroundModel | None = None,
    scenarios: list[BackgroundScenario] | None = None,
    telemetry: Telemetry | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    jobs: int | None = None,
    ttl: float | None = None,
    retry_budget: int | None = None,
    fallback_after: float = DEFAULT_FALLBACK_AFTER,
    poll: float = 0.2,
    status_every: float = 5.0,
) -> list[RunRecord]:
    """Run the campaign over a shared-directory work queue.

    ``jobs`` only sizes the local *fallback* pool (used when no worker
    ever appears or the whole fleet dies); a healthy distributed
    campaign executes nothing in this process.
    """
    tel = resolve_telemetry(telemetry)
    kw = {}
    if ttl is not None:
        kw["ttl"] = ttl
    if retry_budget is not None:
        kw["retry_budget"] = retry_budget
    queue = WorkQueue(queue_dir, **kw)

    run_top = top.with_faults(cfg.faults) if cfg.faults is not None else top
    done = prepare_checkpoint(checkpoint_path, top, cfg, resume)
    emit_campaign_start(tel, cfg, done, queue=str(queue.root))
    bm, scenarios = resolve_scenarios(top, cfg, background_model, scenarios)

    # canonical slots: resumed runs pre-filled, the rest queued
    all_tasks = build_tasks(top, cfg)
    slots: list[RunRecord | None] = [None] * len(all_tasks)
    pending: list[QueueTask] = []
    for t in all_tasks:
        prior = done.get((t.sample, t.mode))
        if prior is not None:
            slots[t.index] = prior
        else:
            pending.append(t)

    merger = _Merger(tel, pending, slots, checkpoint_path)
    dispatcher = DistDispatcher(
        top,
        run_top,
        cfg,
        bm,
        scenarios,
        tel,
        queue,
        pending,
        jobs=jobs,
        fallback_after=fallback_after,
        poll=poll,
        status_every=status_every,
        worker_ids=merger.worker_ids,
    )
    m = tel.metrics
    for task, payload in dispatcher.run():
        merger.offer(task.tid, payload)
        flushed = merger.flush()
        if m.enabled and flushed:
            m.counter("dist_tasks_done_total", "runs merged").inc(flushed)

    records = [rec for rec in slots if rec is not None]
    emit_campaign_end(tel, cfg, records)
    return records
