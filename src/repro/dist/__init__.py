"""Fault-tolerant multi-host campaign execution over a shared directory.

The distributed layer splits a campaign across any number of worker
processes on any number of hosts, coordinating through nothing but a
shared filesystem directory (``--queue DIR``): a crash-tolerant work
queue built on O_EXCL lease files, atomic renames, and first-commit-wins
hard links.  Results merge back in canonical order, byte-identical to a
serial run — see ``docs/DISTRIBUTED.md``.

* :class:`WorkQueue` — the directory protocol (leases, commits, scans);
* :func:`run_campaign_distributed` — the coordinator (materialize,
  merge, local fallback);
* :class:`DistWorker` — the ``repro worker`` claim-execute-commit loop;
* :mod:`repro.dist.manifest` — campaign ↔ JSON manifest round-trip.
"""

from repro.dist.coordinator import run_campaign_distributed
from repro.dist.manifest import (
    NotDistributable,
    build_tasks,
    campaign_to_manifest,
    manifest_to_campaign,
)
from repro.dist.queue import (
    Lease,
    QueueStatus,
    QueueTask,
    QueueUnavailable,
    WorkQueue,
    task_id,
)
from repro.dist.worker import DistWorker, WorkerStats, default_owner

__all__ = [
    "DistWorker",
    "Lease",
    "NotDistributable",
    "QueueStatus",
    "QueueTask",
    "QueueUnavailable",
    "WorkQueue",
    "WorkerStats",
    "build_tasks",
    "campaign_to_manifest",
    "default_owner",
    "manifest_to_campaign",
    "run_campaign_distributed",
    "task_id",
]
