"""Collective algorithms lowered to flows + latency rounds.

Each function takes ``nodes`` — the job's rank-to-node map (rank ``r``
runs on node ``nodes[r]``; one network endpoint per node, aggregating
the node's on-node ranks as the paper's node-level counters do) — and
returns ``(FlowSet, rounds)`` where ``rounds`` is the number of
serialized latency-bound communication rounds of the algorithm.

Algorithms match the common Cray MPICH choices:

* allreduce — recursive doubling (with a fold step for non-powers of 2),
* barrier — dissemination,
* alltoall[v] — pairwise exchange; for large jobs the P*(P-1) pair flows
  are importance-sampled (``max_partners`` per rank, byte-rescaled) to
  keep campaign solves cheap while preserving expected link loads,
* bcast — binomial tree,
* allgather — ring.
"""

from __future__ import annotations

import numpy as np

from repro.network.fluid import FlowSet


def _flowset(src_nodes: np.ndarray, dst_nodes: np.ndarray, nbytes) -> FlowSet:
    """Build a class-0 FlowSet, dropping (defensively) any self-flows."""
    src_nodes = np.asarray(src_nodes, dtype=np.int64)
    dst_nodes = np.asarray(dst_nodes, dtype=np.int64)
    nbytes = np.broadcast_to(np.asarray(nbytes, dtype=np.float64), src_nodes.shape)
    keep = src_nodes != dst_nodes
    return FlowSet(
        src_nodes[keep],
        dst_nodes[keep],
        nbytes[keep],
        np.zeros(keep.sum(), dtype=np.int64),
    )


def allreduce_flows(nodes: np.ndarray, nbytes: float) -> tuple[FlowSet, int]:
    """Recursive-doubling allreduce: ``log2(P)`` exchange rounds.

    Non-power-of-two rank counts use the standard fold: extra ranks send
    their contribution to a partner before the doubling rounds and
    receive the result after, adding two rounds.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    if P < 2:
        return FlowSet.empty(), 0
    p2 = 1 << (P.bit_length() - 1)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    rounds = int(np.log2(p2))
    core = np.arange(p2)
    for r in range(rounds):
        partner = core ^ (1 << r)
        src_parts.append(nodes[core])
        dst_parts.append(nodes[partner])
    if P > p2:
        extras = np.arange(p2, P)
        # fold down and result back up
        src_parts.append(nodes[extras])
        dst_parts.append(nodes[extras - p2])
        src_parts.append(nodes[extras - p2])
        dst_parts.append(nodes[extras])
        rounds += 2
    fl = _flowset(np.concatenate(src_parts), np.concatenate(dst_parts), nbytes)
    return fl, rounds


def barrier_flows(nodes: np.ndarray) -> tuple[FlowSet, int]:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of 8-byte tokens."""
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    if P < 2:
        return FlowSet.empty(), 0
    rounds = int(np.ceil(np.log2(P)))
    ranks = np.arange(P)
    src_parts, dst_parts = [], []
    for r in range(rounds):
        dst = (ranks + (1 << r)) % P
        src_parts.append(nodes[ranks])
        dst_parts.append(nodes[dst])
    fl = _flowset(np.concatenate(src_parts), np.concatenate(dst_parts), 8.0)
    return fl, rounds


def alltoall_flows(
    nodes: np.ndarray,
    per_pair_bytes: float,
    *,
    max_partners: int = 32,
    rng: np.random.Generator,
) -> tuple[FlowSet, int]:
    """Pairwise-exchange alltoall: every rank sends to every other rank.

    For ``P - 1 > max_partners`` the pair set is sampled: each rank keeps
    ``max_partners`` random distinct partners with bytes scaled by
    ``(P - 1) / max_partners``, preserving expected per-link load at a
    fraction of the flow count.
    """
    return alltoallv_flows(
        nodes,
        per_pair_bytes,
        imbalance=0.0,
        max_partners=max_partners,
        rng=rng,
    )


def alltoallv_flows(
    nodes: np.ndarray,
    mean_pair_bytes: float,
    *,
    imbalance: float = 0.5,
    max_partners: int = 32,
    rng: np.random.Generator,
) -> tuple[FlowSet, int]:
    """Alltoallv with log-normal per-pair byte imbalance.

    ``imbalance`` is the sigma of the log-normal multiplier (0 gives a
    uniform alltoall).  Latency rounds equal the pairwise-exchange count
    ``P - 1``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    if P < 2:
        return FlowSet.empty(), 0
    k = min(P - 1, max_partners)
    scale = (P - 1) / k
    ranks = np.repeat(np.arange(P), k)
    # distinct partners per rank: offset trick over 1..P-1
    base = rng.integers(1, P, size=P)
    step = np.arange(k)
    offsets = ((base[:, None] + step[None, :] * max(1, (P - 1) // k) - 1) % (P - 1)) + 1
    partners = (np.repeat(np.arange(P), k) + offsets.ravel()) % P
    nbytes = np.full(ranks.size, mean_pair_bytes * scale)
    if imbalance > 0:
        jitter = rng.lognormal(mean=-0.5 * imbalance**2, sigma=imbalance, size=ranks.size)
        nbytes = nbytes * jitter
    fl = _flowset(nodes[ranks], nodes[partners], nbytes)
    return fl, P - 1


def bcast_flows(nodes: np.ndarray, nbytes: float, *, root: int = 0) -> tuple[FlowSet, int]:
    """Binomial-tree broadcast: ``ceil(log2 P)`` rounds."""
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    if P < 2:
        return FlowSet.empty(), 0
    rounds = int(np.ceil(np.log2(P)))
    # relative rank space rooted at `root`
    src_parts, dst_parts = [], []
    for r in range(rounds):
        senders = np.arange(0, P, 1 << (r + 1))
        receivers = senders + (1 << r)
        ok = receivers < P
        src_parts.append((senders[ok] + root) % P)
        dst_parts.append((receivers[ok] + root) % P)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    fl = _flowset(nodes[src], nodes[dst], nbytes)
    return fl, rounds


def allgather_flows(nodes: np.ndarray, nbytes_per_rank: float) -> tuple[FlowSet, int]:
    """Ring allgather: ``P - 1`` rounds, neighbors exchange the ring."""
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    if P < 2:
        return FlowSet.empty(), 0
    ranks = np.arange(P)
    nxt = (ranks + 1) % P
    fl = _flowset(nodes[ranks], nodes[nxt], float(nbytes_per_rank) * (P - 1))
    return fl, P - 1


def reduce_flows(nodes: np.ndarray, nbytes: float, *, root: int = 0) -> tuple[FlowSet, int]:
    """Binomial-tree reduce: the broadcast tree with edges reversed."""
    fl, rounds = bcast_flows(nodes, nbytes, root=root)
    return FlowSet(fl.dst, fl.src, fl.nbytes, fl.cls), rounds


def gather_flows(nodes: np.ndarray, nbytes_per_rank: float, *, root: int = 0) -> tuple[FlowSet, int]:
    """Direct gather: every non-root rank sends its block to the root.

    The root's ingest serializes the operation, so the latency-round
    count is ``P - 1`` (the paper's incast discussion applies here).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    if P < 2:
        return FlowSet.empty(), 0
    senders = np.delete(np.arange(P), root % P)
    fl = _flowset(nodes[senders], np.full(P - 1, nodes[root % P]), nbytes_per_rank)
    return fl, P - 1


def scatter_flows(nodes: np.ndarray, nbytes_per_rank: float, *, root: int = 0) -> tuple[FlowSet, int]:
    """Direct scatter: the root streams one block to every other rank."""
    fl, rounds = gather_flows(nodes, nbytes_per_rank, root=root)
    return FlowSet(fl.dst, fl.src, fl.nbytes, fl.cls), rounds
