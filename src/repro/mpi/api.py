"""Imperative rank-level MPI over the packet simulator.

:class:`SimComm` mimics the mpi4py surface (lower-case object-style
naming: ``isend``, ``wait``, ``allreduce``, ``alltoallv``, ``barrier``)
but executes on :class:`~repro.network.packet_sim.PacketSimulator`, so
message timing emerges from queueing and the adaptive routing decision.
One communicator drives all ranks from a single control loop — it is a
*simulation* of an MPI program rather than a distributed one — which is
exactly what the examples and microbenchmarks need.

Routing modes follow the communicator's :class:`~repro.mpi.env.RoutingEnv`:
point-to-point and non-A2A collectives use ``p2p_mode``; ``alltoall[v]``
uses ``a2a_mode``, as in Cray MPI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.env import RoutingEnv
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator
from repro.topology.dragonfly import DragonflyTopology


@dataclass
class Request:
    """Handle for a pending non-blocking message."""

    comm: "SimComm"
    msg_id: int

    @property
    def done(self) -> bool:
        return self.comm._sim.messages[self.msg_id].done

    def wait(self) -> float:
        """Block (advance the simulation) until complete; returns the
        message latency in seconds."""
        return self.comm.wait(self)


class SimComm:
    """A simulated communicator over a dragonfly system.

    Parameters
    ----------
    top:
        The system.
    nodes:
        Rank-to-node map; rank ``r`` is the endpoint ``nodes[r]``.
    env:
        Routing-mode environment (Cray MPI defaults when omitted).
    config:
        Packet-simulator configuration.
    """

    def __init__(
        self,
        top: DragonflyTopology,
        nodes: np.ndarray,
        *,
        env: RoutingEnv | None = None,
        config: PacketSimConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.top = top
        self.nodes = np.asarray(nodes, dtype=np.int64)
        if np.unique(self.nodes).size != self.nodes.size:
            raise ValueError("each rank needs a distinct node")
        self.env = env or RoutingEnv()
        self._sim = PacketSimulator(top, config, rng=rng)
        self.op_times: dict[str, float] = {}
        self.op_calls: dict[str, int] = {}

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.nodes.size

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._sim.now

    # ------------------------------------------------------------------
    def _record(self, op: str, elapsed: float, calls: int = 1) -> None:
        self.op_times[op] = self.op_times.get(op, 0.0) + elapsed
        self.op_calls[op] = self.op_calls.get(op, 0) + calls

    def isend(self, src_rank: int, dst_rank: int, nbytes: int) -> Request:
        """Post a non-blocking send from ``src_rank`` to ``dst_rank``."""
        mid = self._sim.add_message(
            InjectionSpec(
                src=int(self.nodes[src_rank]),
                dst=int(self.nodes[dst_rank]),
                nbytes=int(nbytes),
                mode=self.env.p2p_mode,
                start_step=self._sim.step,
            )
        )
        self._record("MPI_Isend", 0.0)
        return Request(self, mid)

    def wait(self, request: Request) -> float:
        """Advance until ``request`` completes; returns elapsed seconds."""
        return self.waitall([request])

    def waitall(self, requests: list[Request]) -> float:
        """Advance until all ``requests`` complete; returns elapsed seconds."""
        t0 = self._sim.now
        limit = self._sim.config.max_steps
        steps = 0
        while not all(r.done for r in requests):
            if self._sim.idle:
                raise RuntimeError("simulator idle with incomplete requests")
            self._sim.advance()
            steps += 1
            if steps > limit:
                raise RuntimeError(f"waitall exceeded {limit} steps")
        elapsed = self._sim.now - t0
        op = "MPI_Wait" if len(requests) == 1 else "MPI_Waitall"
        self._record(op, elapsed)
        return elapsed

    def sendrecv(self, pairs: list[tuple[int, int]], nbytes: int) -> float:
        """Post one message per (src, dst) rank pair and drain them all."""
        reqs = [self.isend(s, d, nbytes) for s, d in pairs]
        return self.waitall(reqs)

    # ------------------------------------------------------------------
    def allreduce(self, nbytes: int) -> float:
        """Recursive-doubling allreduce over all ranks; returns elapsed."""
        t0 = self._sim.now
        P = self.size
        p2 = 1 << (P.bit_length() - 1)
        if P > p2:
            self._round([(r, r - p2) for r in range(p2, P)], nbytes)
        for k in range(int(np.log2(p2))):
            self._round([(i, i ^ (1 << k)) for i in range(p2)], nbytes)
        if P > p2:
            self._round([(r - p2, r) for r in range(p2, P)], nbytes)
        elapsed = self._sim.now - t0
        self._record("MPI_Allreduce", elapsed)
        return elapsed

    def barrier(self) -> float:
        """Dissemination barrier; returns elapsed seconds."""
        t0 = self._sim.now
        P = self.size
        for k in range(int(np.ceil(np.log2(P)))):
            self._round([(i, (i + (1 << k)) % P) for i in range(P)], 8)
        elapsed = self._sim.now - t0
        self._record("MPI_Barrier", elapsed)
        return elapsed

    def bcast(self, nbytes: int, *, root: int = 0) -> float:
        """Binomial-tree broadcast from ``root``; returns elapsed."""
        t0 = self._sim.now
        P = self.size
        rounds = int(np.ceil(np.log2(P))) if P > 1 else 0
        for r in range(rounds):
            pairs = []
            for s in range(0, P, 1 << (r + 1)):
                d = s + (1 << r)
                if d < P:
                    pairs.append(((s + root) % P, (d + root) % P))
            if pairs:
                self._round(pairs, nbytes)
        elapsed = self._sim.now - t0
        self._record("MPI_Bcast", elapsed)
        return elapsed

    def reduce(self, nbytes: int, *, root: int = 0) -> float:
        """Binomial-tree reduce to ``root`` (the bcast tree reversed)."""
        t0 = self._sim.now
        P = self.size
        rounds = int(np.ceil(np.log2(P))) if P > 1 else 0
        for r in range(rounds - 1, -1, -1):
            pairs = []
            for s in range(0, P, 1 << (r + 1)):
                d = s + (1 << r)
                if d < P:
                    pairs.append(((d + root) % P, (s + root) % P))
            if pairs:
                self._round(pairs, nbytes)
        elapsed = self._sim.now - t0
        self._record("MPI_Reduce", elapsed)
        return elapsed

    def allgather(self, nbytes: int) -> float:
        """Ring allgather: P-1 neighbor rounds."""
        t0 = self._sim.now
        P = self.size
        for _ in range(P - 1):
            self._round([(i, (i + 1) % P) for i in range(P)], nbytes)
        elapsed = self._sim.now - t0
        self._record("MPI_Allgather", elapsed)
        return elapsed

    def alltoall(self, per_pair_bytes: int) -> float:
        """Pairwise-exchange alltoall; uses the A2A routing mode."""
        t0 = self._sim.now
        P = self.size
        for k in range(1, P):
            reqs = []
            for i in range(P):
                j = i ^ k if (i ^ k) < P else None
                if j is None or j == i:
                    continue
                mid = self._sim.add_message(
                    InjectionSpec(
                        src=int(self.nodes[i]),
                        dst=int(self.nodes[j]),
                        nbytes=int(per_pair_bytes),
                        mode=self.env.a2a_mode,
                        start_step=self._sim.step,
                    )
                )
                reqs.append(Request(self, mid))
            if reqs:
                self._drain(reqs)
        elapsed = self._sim.now - t0
        self._record("MPI_Alltoall", elapsed)
        return elapsed

    # ------------------------------------------------------------------
    def _round(self, pairs: list[tuple[int, int]], nbytes: int) -> None:
        reqs = []
        for s, d in pairs:
            if s == d:
                continue
            mid = self._sim.add_message(
                InjectionSpec(
                    src=int(self.nodes[s]),
                    dst=int(self.nodes[d]),
                    nbytes=int(nbytes),
                    mode=self.env.p2p_mode,
                    start_step=self._sim.step,
                )
            )
            reqs.append(Request(self, mid))
        self._drain(reqs)

    def _drain(self, reqs: list[Request]) -> None:
        limit = self._sim.config.max_steps
        steps = 0
        while not all(r.done for r in reqs):
            self._sim.advance()
            steps += 1
            if steps > limit:
                raise RuntimeError(f"collective round exceeded {limit} steps")

    # ------------------------------------------------------------------
    def profile(self) -> dict[str, tuple[int, float]]:
        """Per-interface (calls, seconds) observed so far."""
        return {op: (self.op_calls[op], self.op_times[op]) for op in self.op_times}

    def stall_to_flit_ratio(self) -> float:
        """Aggregate network congestion metric of the underlying sim."""
        return self._sim.stall_to_flit_ratio()
