"""Simulated MPI layer.

Two complementary views of MPI traffic:

* **declarative** (:mod:`~repro.mpi.patterns`,
  :mod:`~repro.mpi.collectives`) — applications describe each iteration
  as a :class:`~repro.mpi.patterns.Phase` of point-to-point flows and
  collective operations; collectives lower to flows + latency-round
  counts through the standard algorithms (recursive doubling, pairwise
  exchange, dissemination).  The fluid engine consumes these.
* **imperative** (:mod:`~repro.mpi.api`) — a rank-level ``SimComm`` with
  ``isend/irecv/wait/allreduce/alltoall/barrier`` executing on the
  packet simulator, for examples and microbenchmarks.

Routing-mode selection follows Cray MPI's environment variables
(:mod:`~repro.mpi.env`): ``MPICH_GNI_ROUTING_MODE`` for most operations
(default ``ADAPTIVE_0``), ``MPICH_GNI_A2A_ROUTING_MODE`` for
``MPI_Alltoall[v]`` (default ``ADAPTIVE_1``).
"""

from repro.mpi.patterns import Phase, CollectiveSpec, P2PSpec, TrafficOp
from repro.mpi.collectives import (
    allreduce_flows,
    alltoall_flows,
    alltoallv_flows,
    barrier_flows,
    bcast_flows,
    allgather_flows,
    reduce_flows,
    gather_flows,
    scatter_flows,
)
from repro.mpi.env import RoutingEnv
from repro.mpi.api import SimComm, Request

__all__ = [
    "Phase",
    "CollectiveSpec",
    "P2PSpec",
    "TrafficOp",
    "allreduce_flows",
    "alltoall_flows",
    "alltoallv_flows",
    "barrier_flows",
    "bcast_flows",
    "allgather_flows",
    "reduce_flows",
    "gather_flows",
    "scatter_flows",
    "RoutingEnv",
    "SimComm",
    "Request",
]
