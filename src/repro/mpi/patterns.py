"""Declarative communication phases.

An application iteration is a sequence of :class:`Phase` objects.  Each
phase carries:

* a point-to-point :class:`P2PSpec` — aggregated byte flows for the
  iteration plus the count of latency-exposed (non-overlapped) messages,
* a list of :class:`CollectiveSpec` — each lowered to flows by
  :mod:`repro.mpi.collectives`, with the latency-round count of its
  algorithm,
* a per-rank compute time.

The experiment harness resolves a phase with the fluid engine and turns
the result into wall-clock time::

    t_p2p  = max flow completion (bandwidth)
           + exposed_messages * mean flow latency        -> wait_op
    t_coll = rounds * mean round latency
           + max flow completion of the collective flows -> its MPI op
    t_phase = compute + t_p2p + sum(t_coll)

Traffic classes: within a phase, flows are tagged with a
:class:`TrafficOp` that the harness maps to a routing mode via the job's
:class:`~repro.mpi.env.RoutingEnv` (point-to-point and non-A2A
collectives use the main mode; Alltoall[v] uses the A2A mode, which is
AD1 by default in Cray MPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum


from repro.network.fluid import FlowSet
from repro.util import check_nonnegative


class TrafficOp(IntEnum):
    """Routing-relevant traffic categories within a phase."""

    P2P = 0  # point-to-point and non-alltoall collectives
    A2A = 1  # MPI_Alltoall[v] traffic (separate Cray MPI routing mode)


@dataclass
class P2PSpec:
    """Aggregated point-to-point traffic of one iteration.

    Attributes
    ----------
    flows:
        Byte flows for the whole iteration (bytes already multiplied by
        the number of inner messages they aggregate).
    exposed_messages:
        Number of per-rank message latencies *not* hidden behind compute
        (overlapped sends contribute bandwidth but no exposed latency).
    wait_op:
        MPI interface the wait time is attributed to (``MPI_Wait``,
        ``MPI_Waitall``, ``MPI_Recv``...).
    post_op:
        Interface charged with the (small, fixed) per-message posting
        overhead, typically ``MPI_Isend``.
    messages_per_rank:
        Total messages posted per rank per iteration (for call counts and
        posting overhead).
    overlap_fraction:
        Fraction of the exchange's drain time hidden behind computation
        (apps that interleave communication with compute — MILC's CG
        stencil — hide most of the bandwidth term; only the residual
        shows up in the wait call).
    """

    flows: FlowSet
    exposed_messages: float = 0.0
    wait_op: str = "MPI_Wait"
    post_op: str = "MPI_Isend"
    messages_per_rank: float = 0.0
    overlap_fraction: float = 0.0
    #: which statistic of the per-flow ambient latency prices an exposed
    #: message: "mean" for independent waits, "p90" for serialized
    #: pipelines where stragglers chain along the critical path
    latency_stat: str = "mean"

    def __post_init__(self) -> None:
        check_nonnegative("exposed_messages", self.exposed_messages)
        check_nonnegative("messages_per_rank", self.messages_per_rank)
        if not (0.0 <= self.overlap_fraction < 1.0):
            raise ValueError("overlap_fraction must be in [0, 1)")


@dataclass
class CollectiveSpec:
    """One collective operation instance within a phase.

    Attributes
    ----------
    op:
        The MPI interface name (``MPI_Allreduce``, ``MPI_Alltoallv``...).
    flows:
        Flows carrying the collective's total traffic for the iteration
        (all rounds and all inner calls aggregated).
    rounds:
        Total latency-bound rounds for the iteration (e.g. calls per
        iteration x 2*log2(P) for recursive-doubling allreduce).
    traffic_op:
        :data:`TrafficOp.A2A` for Alltoall[v], else :data:`TrafficOp.P2P`.
    calls:
        MPI call count per rank per iteration.
    msg_bytes:
        Bytes passed into each call per rank (what AutoPerf reports as
        the interface's average bytes — e.g. 8 for MILC's allreduces —
        as opposed to the aggregate on-wire traffic in ``flows``).
    """

    op: str
    flows: FlowSet
    rounds: float
    traffic_op: TrafficOp = TrafficOp.P2P
    calls: float = 1.0
    msg_bytes: float = 0.0
    #: "global" collectives (allreduce/barrier/bcast trees) synchronize
    #: every round on the slowest participant — the paper's V-D point
    #: that collectives are limited by the slowest process.  "pairwise"
    #: rounds (alltoall exchanges) only synchronize each pair.
    sync: str = "global"

    def __post_init__(self) -> None:
        check_nonnegative("rounds", self.rounds)


@dataclass
class Phase:
    """One communication/compute phase of an application iteration.

    ``spread_time``: wall-clock over which the phase's traffic is
    actually spread.  Bursty exchanges leave it 0 (the burst drains at
    full rate, and utilization during the burst is what drives queueing
    and stalls).  Aggregates of many small calls interleaved with
    compute (e.g. a CG solver's per-iteration allreduces bundled into
    one phase) set it to the interleave window, so their *own* traffic
    does not masquerade as a single dense burst.
    """

    name: str
    compute_time: float
    p2p: P2PSpec | None = None
    collectives: list[CollectiveSpec] = field(default_factory=list)
    spread_time: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative("compute_time", self.compute_time)
        check_nonnegative("spread_time", self.spread_time)

    def all_flows(self) -> FlowSet:
        """All flows of the phase with classes set to their TrafficOp."""
        parts: list[FlowSet] = []
        if self.p2p is not None and self.p2p.flows.n:
            parts.append(self.p2p.flows.with_class(int(TrafficOp.P2P)))
        for c in self.collectives:
            if c.flows.n:
                parts.append(c.flows.with_class(int(c.traffic_op)))
        return FlowSet.concat(parts)

    def total_bytes(self) -> float:
        """Total bytes moved by the phase per iteration."""
        total = 0.0
        if self.p2p is not None:
            total += float(self.p2p.flows.nbytes.sum())
        for c in self.collectives:
            total += float(c.flows.nbytes.sum())
        return total
