"""Cray MPI routing-mode environment handling.

Applications on Aries select routing control modes by setting environment
variables before launch (Section II-D of the paper):

* ``MPICH_GNI_ROUTING_MODE`` — mode for most MPI operations
  (default ``ADAPTIVE_0``),
* ``MPICH_GNI_A2A_ROUTING_MODE`` — mode for ``MPI_Alltoall[v]``
  (default ``ADAPTIVE_1``).

:class:`RoutingEnv` reproduces that interface over an explicit mapping
(or, optionally, the real process environment), and hands the experiment
harness the mode for each :class:`~repro.mpi.patterns.TrafficOp`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.biases import AD0, AD1, RoutingMode, mode_by_name
from repro.mpi.patterns import TrafficOp

ROUTING_MODE_VAR = "MPICH_GNI_ROUTING_MODE"
A2A_ROUTING_MODE_VAR = "MPICH_GNI_A2A_ROUTING_MODE"


@dataclass(frozen=True)
class RoutingEnv:
    """Resolved routing modes for a job.

    ``p2p_mode`` applies to point-to-point traffic and non-Alltoall
    collectives; ``a2a_mode`` to ``MPI_Alltoall[v]``.
    """

    p2p_mode: RoutingMode = AD0
    a2a_mode: RoutingMode = AD1

    @classmethod
    def from_mapping(cls, env: dict[str, str]) -> "RoutingEnv":
        """Build from an environment-variable mapping.

        Unset variables fall back to the Cray MPI defaults (AD0 for
        point-to-point, AD1 for Alltoall[v]); e.g. a job script exporting
        only ``MPICH_GNI_ROUTING_MODE=ADAPTIVE_3`` gets AD3 point-to-point
        routing with Alltoall[v] still on AD1.
        """
        p2p = env.get(ROUTING_MODE_VAR)
        a2a = env.get(A2A_ROUTING_MODE_VAR)
        return cls(
            p2p_mode=mode_by_name(p2p) if p2p else AD0,
            a2a_mode=mode_by_name(a2a) if a2a else AD1,
        )

    @classmethod
    def from_os_environ(cls) -> "RoutingEnv":
        """Build from the real process environment."""
        return cls.from_mapping(dict(os.environ))

    @classmethod
    def uniform(cls, mode: RoutingMode) -> "RoutingEnv":
        """Both variables set to the same mode (as the facility default
        change did: everything AD3)."""
        return cls(p2p_mode=mode, a2a_mode=mode)

    def mode_for(self, op: TrafficOp) -> RoutingMode:
        """Routing mode for a traffic class."""
        return self.a2a_mode if op == TrafficOp.A2A else self.p2p_mode

    def modes_list(self) -> list[RoutingMode]:
        """Modes indexed by ``TrafficOp`` value, for the fluid solver."""
        return [self.p2p_mode, self.a2a_mode]

    def as_mapping(self) -> dict[str, str]:
        """Render back to environment-variable form (for job logs)."""
        return {
            ROUTING_MODE_VAR: f"ADAPTIVE_{self.p2p_mode.name[-1]}",
            A2A_ROUTING_MODE_VAR: f"ADAPTIVE_{self.a2a_mode.name[-1]}",
        }
